// Package memsim simulates a shared-memory multiprocessor at the
// granularity the RMR (remote-memory-references) time measure is
// defined over: one atomic shared-memory operation per scheduling step.
//
// The simulator supports the two architecture classes of the paper:
//
//   - CC (cache-coherent): variable locality is dynamic. A read hits
//     for free if the process holds a valid cached copy, otherwise it
//     costs one RMR and installs a copy. A write (or atomic
//     read-modify-write) is free only if the writer is the sole holder
//     of the line; otherwise it costs one RMR and invalidates all other
//     copies (write-invalidate protocol).
//
//   - DSM (distributed shared memory, no coherent caches): variable
//     locality is static. Each variable lives in exactly one process's
//     memory module (or in no process's, for HomeGlobal); an access is
//     free iff the accessor is the variable's home process.
//
// Simulated processes are cooperatively scheduled goroutines. Every
// Read, Write, RMW and Await re-check is a scheduling point, so a
// Scheduler fully determines the interleaving; runs are reproducible
// and can be explored systematically (see Explorer). Busy-waiting is
// expressed as condition waits over explicit watch sets, which lets the
// engine (a) suspend spinners instead of burning steps and (b) charge
// exactly one RMR per re-check that misses — the same accounting the
// paper's analyses use for spin loops.
package memsim

import (
	"fmt"
	"os"
	"sort"

	"fetchphi/internal/phi"
)

// varTrace names a variable whose writes and RMWs are printed (debug;
// set VAR_TRACE=<name>).
var varTrace = os.Getenv("VAR_TRACE")

// Word is the machine word; re-exported from phi so algorithm code only
// needs one import for values.
type Word = phi.Word

// Model selects the memory architecture being simulated.
type Model int

// The architecture classes: the paper's two (write-invalidate CC and
// DSM), plus a write-update CC variant for model-sensitivity
// ablations.
const (
	// CC is a cache-coherent machine with a write-invalidate
	// protocol: a write purges all other cached copies, so every
	// spinning reader pays one RMR per update of its spin variable.
	// This is the model the paper's CC analyses assume.
	CC Model = iota
	// DSM is a distributed shared-memory machine without coherent
	// caches.
	DSM
	// CCUpdate is a cache-coherent machine with a write-update
	// protocol: a write refreshes other cached copies in place, so a
	// reader misses at most once per variable and spin re-checks are
	// free; the writer pays one RMR whenever anyone else holds a
	// copy. Asymptotic RMR classes are generally unchanged, but
	// constants shift from readers to writers (ablation E8e).
	CCUpdate
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case DSM:
		return "DSM"
	case CCUpdate:
		return "CC-update"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel inverts Model.String: it is the decode half of every
// place a model crosses a serialization boundary (explore artifacts,
// checkpoints, the fleet wire protocol).
func ParseModel(s string) (Model, error) {
	for _, m := range []Model{CC, DSM, CCUpdate} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("memsim: unknown memory model %q", s)
}

// HomeGlobal marks a variable that is remote to every process on a DSM
// machine (e.g. a centralized lock word).
const HomeGlobal = -1

// Var is a handle to a simulated shared variable. The zero Var is
// invalid.
type Var struct{ idx int32 }

// IsZero reports whether v is the invalid zero handle.
func (v Var) IsZero() bool { return v.idx == 0 }

// watchEntry subscribes one process's current await (identified by its
// epoch) to writes on a variable. Entries from completed awaits are
// ignored when the variable is written.
type watchEntry struct {
	p     *Proc
	epoch uint64
}

// variable is the engine-side state of one shared variable.
type variable struct {
	name     string
	home     int // process id, or HomeGlobal
	value    Word
	sharers  bitset // CC: processes holding a valid cached copy
	watchers []watchEntry
	rmrs     int64 // remote references charged against this variable
}

// Machine is one simulated multiprocessor instance. A Machine is built
// (variables allocated, processes added), run exactly once, and then
// inspected. It is not safe for concurrent use by multiple host
// goroutines; the engine coordinates its own process goroutines.
type Machine struct {
	model Model
	nproc int

	vars  []*variable // 1-based; vars[0] unused
	procs []*Proc

	steps      int64
	maxSteps   int64
	csOccupant int // process id in critical section, or -1
	csEntries  int64

	violation  error
	running    *Proc       // process currently between resume and report
	trace      *traceRing  // nil unless EnableTrace was called
	sinks      []EventSink // observers of every shared-memory operation
	phaseSinks []PhaseSink // the subset of sinks observing phase transitions

	abortPoints []AbortPoint // adversary abort schedule (see abort.go)
}

// NewMachine returns a machine with the given memory model, sized for
// nproc processes (process ids 0..nproc-1 are valid variable homes).
func NewMachine(model Model, nproc int) *Machine {
	if nproc <= 0 {
		panic(fmt.Sprintf("memsim: nproc must be positive, got %d", nproc))
	}
	return &Machine{
		model:      model,
		nproc:      nproc,
		vars:       make([]*variable, 1, 64), // index 0 reserved as invalid
		csOccupant: -1,
	}
}

// Model returns the machine's memory model.
func (m *Machine) Model() Model { return m.model }

// NumProcs returns the number of processes the machine was sized for.
func (m *Machine) NumProcs() int { return m.nproc }

// NewVar allocates a shared variable initialized to init. On a DSM
// machine the variable is placed in process home's memory module; pass
// HomeGlobal for a variable remote to everyone. The home is ignored on
// CC machines (locality there is dynamic).
func (m *Machine) NewVar(name string, home int, init Word) Var {
	if home != HomeGlobal && (home < 0 || home >= m.nproc) {
		panic(fmt.Sprintf("memsim: variable %q: invalid home %d", name, home))
	}
	m.vars = append(m.vars, &variable{
		name:    name,
		home:    home,
		value:   init,
		sharers: newBitset(m.nproc),
	})
	return Var{idx: int32(len(m.vars) - 1)}
}

// NewArray allocates n variables name[0..n-1], all with the same home.
func (m *Machine) NewArray(name string, n, home int, init Word) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = m.NewVar(fmt.Sprintf("%s[%d]", name, i), home, init)
	}
	return vs
}

// NewPerProcArray allocates one variable per process, variable i homed
// at process i — the layout used for dedicated spin variables on DSM
// machines.
func (m *Machine) NewPerProcArray(name string, init Word) []Var {
	vs := make([]Var, m.nproc)
	for i := range vs {
		vs[i] = m.NewVar(fmt.Sprintf("%s[%d]", name, i), i, init)
	}
	return vs
}

// Value returns the current value of v. It is intended for inspection
// after a run (or from test code between runs); it performs no RMR
// accounting.
func (m *Machine) Value(v Var) Word { return m.varAt(v).value }

// StepsSoFar returns the number of scheduling points executed so far
// (instrumentation; no simulated cost).
func (m *Machine) StepsSoFar() int64 { return m.steps }

// CSEntriesSoFar returns the number of critical-section entries
// recorded so far. Process bodies may call it between operations (it is
// instrumentation, not a simulated memory access) to compute fairness
// metrics such as bypass counts.
func (m *Machine) CSEntriesSoFar() int64 { return m.csEntries }

func (m *Machine) varAt(v Var) *variable {
	if v.idx <= 0 || int(v.idx) >= len(m.vars) {
		panic("memsim: invalid Var handle")
	}
	return m.vars[v.idx]
}

// chargeRMR charges one remote memory reference by p against vv, with
// per-phase attribution.
func (m *Machine) chargeRMR(p *Proc, vv *variable) {
	p.stats.RMRs++
	p.stats.PhaseRMRs[p.phase]++
	vv.rmrs++
}

// doRead performs the memory-system side of a read by p and returns
// the value, charging RMRs per the model.
func (m *Machine) doRead(p *Proc, v Var, spinning bool) Word {
	vv := m.varAt(v)
	// Snapshot the RMR counter only when sinks are attached, so the
	// recorded event can say whether this operation was charged; with
	// no sinks the hot path stays exactly as before.
	rmrsBefore := int64(-1)
	if len(m.sinks) > 0 {
		rmrsBefore = p.stats.RMRs
	}
	switch m.model {
	case DSM:
		if vv.home != p.id {
			m.chargeRMR(p, vv)
			if spinning {
				p.stats.NonLocalSpinReads++
			}
		}
	case CC, CCUpdate:
		if !vv.sharers.has(p.id) {
			m.chargeRMR(p, vv)
			vv.sharers.add(p.id)
		}
	}
	if rmrsBefore >= 0 {
		kind := TraceRead
		if spinning {
			kind = TraceSpinRead
		}
		m.record(p, kind, vv, vv.value, vv.value, p.stats.RMRs > rmrsBefore)
	}
	return vv.value
}

// doWrite performs a write by p, charging RMRs and waking any waiters
// watching v.
func (m *Machine) doWrite(p *Proc, v Var, x Word) {
	vv := m.varAt(v)
	rmrsBefore := int64(-1)
	if len(m.sinks) > 0 {
		rmrsBefore = p.stats.RMRs
	}
	m.chargeWrite(p, vv)
	if varTrace == "*" || (varTrace != "" && vv.name == varTrace) {
		fmt.Printf("  var[%06d]: p%d writes %s: %d -> %d\n", m.steps, p.id, vv.name, vv.value, x)
	}
	old := vv.value
	vv.value = x
	if rmrsBefore >= 0 {
		m.record(p, TraceWrite, vv, old, x, p.stats.RMRs > rmrsBefore)
	}
	m.wakeWatchers(vv)
}

// doRMW atomically applies f to v on behalf of p and returns the old
// value. Its RMR cost is that of a write.
func (m *Machine) doRMW(p *Proc, v Var, f func(Word) Word) Word {
	vv := m.varAt(v)
	rmrsBefore := int64(-1)
	if len(m.sinks) > 0 {
		rmrsBefore = p.stats.RMRs
	}
	m.chargeWrite(p, vv)
	old := vv.value
	vv.value = f(old)
	if rmrsBefore >= 0 {
		m.record(p, TraceRMW, vv, old, vv.value, p.stats.RMRs > rmrsBefore)
	}
	if varTrace == "*" || (varTrace != "" && vv.name == varTrace) {
		fmt.Printf("  var[%06d]: p%d rmw %s: %d -> %d\n", m.steps, p.id, vv.name, old, vv.value)
	}
	m.wakeWatchers(vv)
	return old
}

func (m *Machine) chargeWrite(p *Proc, vv *variable) {
	switch m.model {
	case DSM:
		if vv.home != p.id {
			m.chargeRMR(p, vv)
		}
	case CC:
		if !vv.sharers.hasOnly(p.id) {
			m.chargeRMR(p, vv)
			vv.sharers.clear()
			vv.sharers.add(p.id)
		}
	case CCUpdate:
		// The write refreshes every other copy in place; it is remote
		// iff someone else holds one.
		others := vv.sharers.count
		if vv.sharers.has(p.id) {
			others--
		}
		if others > 0 {
			m.chargeRMR(p, vv)
		} else if !vv.sharers.has(p.id) {
			m.chargeRMR(p, vv) // cold miss
		}
		vv.sharers.add(p.id)
	}
}

// wakeWatchers flags every process with a live await on vv for a
// re-check.
func (m *Machine) wakeWatchers(vv *variable) {
	if len(vv.watchers) == 0 {
		return
	}
	for _, w := range vv.watchers {
		if w.p.status == statusWaiting && w.p.watchEpoch == w.epoch {
			w.p.status = statusRecheck
		}
	}
	vv.watchers = vv.watchers[:0]
}

// registerWatch subscribes p's current await to writes on each watched
// variable.
func (m *Machine) registerWatch(p *Proc) {
	for _, v := range p.watch {
		vv := m.varAt(v)
		vv.watchers = append(vv.watchers, watchEntry{p: p, epoch: p.watchEpoch})
	}
}

// VarRMR is one row of the hot-variable report.
type VarRMR struct {
	// Name is the variable's allocation name.
	Name string
	// RMRs is the number of remote references it attracted.
	RMRs int64
}

// HotVars returns the k variables that attracted the most remote
// memory references, descending — contention attribution for analyzing
// where an algorithm's RMRs actually go. Call after the run.
func (m *Machine) HotVars(k int) []VarRMR {
	out := make([]VarRMR, 0, len(m.vars))
	for _, vv := range m.vars[1:] {
		if vv.rmrs > 0 {
			out = append(out, VarRMR{Name: vv.name, RMRs: vv.rmrs})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RMRs != out[j].RMRs {
			return out[i].RMRs > out[j].RMRs
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// fail records the first violation; later ones are dropped.
func (m *Machine) fail(err error) {
	if m.violation == nil {
		m.violation = err
	}
}
