package memsim

// This file is the exported wave-range execution API: it lets an
// external driver (the distributed fleet coordinator/worker pair in
// internal/fleet, or any future backend) own the wave loop while memsim
// keeps owning schedule execution and child generation. The contract
// mirrors the internal explorer exactly — a wave is a canonically
// ordered slice of schedules, a range is any contiguous sub-slice of
// it, and the per-index outcomes are a pure function of the machine —
// so a driver that executes every index of a wave exactly once and
// merges by index reproduces Explorer.Run bit for bit, whatever
// machine, process, or lease the indices ran on.

// ResolvedPreemptions returns the literal preemption bound K that the
// Explorer's MaxPreemptions encoding selects: ZeroPreemptions resolves
// to 0, zero resolves to DefaultPreemptions, positive values pass
// through. External wave drivers need it because child generation
// stops at the bound, and every executor of the same campaign must
// agree on where that is.
func (e *Explorer) ResolvedPreemptions() int {
	switch {
	case e.MaxPreemptions < 0:
		return 0
	case e.MaxPreemptions == 0:
		return DefaultPreemptions
	default:
		return e.MaxPreemptions
	}
}

// RunScheduleRange executes a contiguous range of one wave's schedules
// against fresh machines from Build and returns their outcomes indexed
// like scheds. The range is sharded across e.Workers goroutines with
// work stealing (values <= 1 run sequentially); the outcomes are
// identical either way because each one lands at its own index.
// Drivers reassemble a wave by concatenating range outcomes in index
// order and derive the next wave by concatenating Children — the same
// canonical merge Explorer.Run performs internally.
func (e *Explorer) RunScheduleRange(scheds [][]Preemption) []ScheduleOutcome {
	if len(scheds) == 0 {
		return nil
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	return e.runWave(scheds, 0, 0, e.ResolvedPreemptions(), workers)
}

// RootWave returns the canonical first wave of every exploration: the
// single empty (purely non-preemptive) schedule. Exported so external
// wave drivers seed their frontier with exactly the value Explorer.Run
// uses — a nil schedule, which matters for bit-identical
// FailingSchedule reporting.
func RootWave() [][]Preemption {
	return [][]Preemption{nil}
}
