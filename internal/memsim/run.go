package memsim

import (
	"fmt"
	"strings"
)

// DefaultMaxSteps bounds a run when RunConfig.MaxSteps is zero.
const DefaultMaxSteps = 20_000_000

// RunConfig configures one run of a machine.
type RunConfig struct {
	// Sched decides the interleaving. Defaults to NewRandom(1).
	Sched Scheduler
	// MaxSteps aborts runs that exceed this many scheduling points
	// (livelock/starvation guard). Defaults to DefaultMaxSteps.
	MaxSteps int64
	// Observer, if non-nil, is invoked at every scheduling decision
	// with the runnable set (ascending ids) and the chosen process.
	// Used by the systematic explorer.
	Observer func(step int64, runnable []int, chosen int)
}

// Result summarizes one completed run.
type Result struct {
	// Completed is true iff every process body ran to completion
	// with no violation.
	Completed bool
	// Deadlocked is true if some processes were still waiting when
	// no process could be scheduled.
	Deadlocked bool
	// TimedOut is true if the MaxSteps bound was hit.
	TimedOut bool
	// Violation holds the first assertion failure (mutual exclusion,
	// CS protocol), if any.
	Violation error
	// Steps is the total number of scheduling points executed.
	Steps int64
	// CSEntries is the total number of critical-section entries.
	CSEntries int64
	// Procs holds per-process statistics, indexed by process id.
	Procs []ProcStats
	// WaitingProcs lists the ids of processes blocked in an Await
	// when the run ended without completing.
	WaitingProcs []int
	// WaitingDetail describes, for each entry of WaitingProcs, the
	// variables its await watches — the first thing to look at when
	// diagnosing a deadlock.
	WaitingDetail []string
}

// Err converts a non-successful result into an error, nil otherwise.
func (r Result) Err() error {
	switch {
	case r.Violation != nil:
		return r.Violation
	case r.Deadlocked:
		return fmt.Errorf("memsim: deadlock after %d steps; %s", r.Steps, strings.Join(r.WaitingDetail, "; "))
	case r.TimedOut:
		return fmt.Errorf("memsim: run exceeded %d steps (livelock or starvation)", r.Steps)
	case !r.Completed:
		return fmt.Errorf("memsim: run did not complete")
	default:
		return nil
	}
}

// TotalRMRs sums RMRs over all processes.
func (r Result) TotalRMRs() int64 {
	var total int64
	for i := range r.Procs {
		total += r.Procs[i].RMRs
	}
	return total
}

// MaxRMRPerEntry returns the worst per-entry RMR cost observed by any
// process (requires the processes to use BeginEntrySection /
// EndExitSection, which the harness workload does).
func (r Result) MaxRMRPerEntry() int64 {
	var worst int64
	for i := range r.Procs {
		if g := r.Procs[i].MaxRMRGap; g > worst {
			worst = g
		}
	}
	return worst
}

// MeanRMRPerEntry returns total RMRs divided by total CS entries.
func (r Result) MeanRMRPerEntry() float64 {
	if r.CSEntries == 0 {
		return 0
	}
	return float64(r.TotalRMRs()) / float64(r.CSEntries)
}

// NonLocalSpinReads sums spin re-check reads of remotely homed
// variables across processes (DSM model).
func (r Result) NonLocalSpinReads() int64 {
	var total int64
	for i := range r.Procs {
		total += r.Procs[i].NonLocalSpinReads
	}
	return total
}

// TotalAborts sums withdrawn passages across processes.
func (r Result) TotalAborts() int64 {
	var total int64
	for i := range r.Procs {
		total += r.Procs[i].Aborts
	}
	return total
}

// Passages is the abortable workload's denominator: passages that
// either completed (a CS entry) or were withdrawn (an abort).
func (r Result) Passages() int64 { return r.CSEntries + r.TotalAborts() }

// AmortizedRMRPerPassage is total RMRs divided by completed-or-aborted
// passages — the honest cost measure for abortable mutual exclusion,
// where withdrawn passages do real (bounded) work too.
func (r Result) AmortizedRMRPerPassage() float64 {
	if p := r.Passages(); p != 0 {
		return float64(r.TotalRMRs()) / float64(p)
	}
	return 0
}

// MaxAbortResolveSteps is the worst steps-to-resolution of any abort
// request in the run (see ProcStats.MaxAbortResolveSteps).
func (r Result) MaxAbortResolveSteps() int64 {
	var worst int64
	for i := range r.Procs {
		if s := r.Procs[i].MaxAbortResolveSteps; s > worst {
			worst = s
		}
	}
	return worst
}

// Run executes the machine to completion (or violation, deadlock, or
// step bound) and returns the result. A machine can be run only once.
func (m *Machine) Run(cfg RunConfig) Result {
	if cfg.Sched == nil {
		cfg.Sched = NewRandom(1)
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if len(m.procs) == 0 {
		return Result{Completed: true}
	}
	m.distributeAbortPoints()

	for _, p := range m.procs {
		go p.run()
	}
	for _, p := range m.procs {
		m.handleReport(p, <-p.report)
	}

	last := -1
	runnable := make([]int, 0, len(m.procs))
	var timedOut bool
	for m.violation == nil {
		runnable = runnable[:0]
		allDone := true
		for _, p := range m.procs {
			switch p.status {
			case statusReady, statusRecheck:
				runnable = append(runnable, p.id)
				allDone = false
			case statusWaiting:
				allDone = false
			}
		}
		if len(runnable) == 0 || allDone {
			break
		}
		if m.steps >= cfg.MaxSteps {
			timedOut = true
			break
		}
		id := cfg.Sched.Pick(m.steps, runnable, last)
		if cfg.Observer != nil {
			cfg.Observer(m.steps, runnable, id)
		}
		m.steps++
		last = id
		p := m.procs[id]
		p.resume <- false
		m.handleReport(p, <-p.report)
	}

	res := Result{
		Violation: m.violation,
		TimedOut:  timedOut,
		Steps:     m.steps,
		CSEntries: m.csEntries,
	}
	// Tear down: unwind every process goroutine still alive.
	for _, p := range m.procs {
		if p.status != statusDone {
			if p.status == statusWaiting && res.Violation == nil && !timedOut {
				res.WaitingProcs = append(res.WaitingProcs, p.id)
				names := make([]string, len(p.watch))
				for i, v := range p.watch {
					names[i] = m.varAt(v).name
				}
				res.WaitingDetail = append(res.WaitingDetail,
					fmt.Sprintf("p%d awaits %v", p.id, names))
			}
			p.resume <- true
			<-p.report
			p.status = statusDone
		}
	}
	res.Deadlocked = len(res.WaitingProcs) > 0
	res.Completed = res.Violation == nil && !res.Deadlocked && !timedOut
	res.Procs = make([]ProcStats, len(m.procs))
	for i, p := range m.procs {
		res.Procs[i] = p.stats
	}
	return res
}

// handleReport updates the engine-side status after a process hands
// control back.
func (m *Machine) handleReport(p *Proc, kind reportKind) {
	switch kind {
	case reportStep:
		p.status = statusReady
	case reportBlocked:
		p.status = statusWaiting
	case reportDone, reportViolation:
		p.status = statusDone
	}
}

// run is the process goroutine wrapper: it executes the body and
// translates returns, kills, and violations into final reports.
//
// The wrapper performs a startup handshake before calling the body, so
// that ALL body code — including any preamble before the first memory
// operation, which may lazily allocate variables — executes inside the
// process's exclusive scheduling windows. Without it, preambles of
// different processes would run concurrently.
func (p *Proc) run() {
	defer func() {
		switch r := recover().(type) {
		case nil:
			p.report <- reportDone
		case killed:
			p.report <- reportDone
		case violation:
			p.m.fail(r.err)
			p.report <- reportViolation
		default:
			panic(r)
		}
	}()
	p.report <- reportStep
	if <-p.resume {
		panic(killed{})
	}
	p.body(p)
}
