package memsim

import (
	"runtime"
	"testing"
	"time"

	"fetchphi/internal/phi"
)

// runOne builds a machine with build, runs it round-robin, and fails
// the test on any error.
func runOne(t *testing.T, model Model, nproc int, build func(m *Machine)) Result {
	t.Helper()
	m := NewMachine(model, nproc)
	build(m)
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCCReadCachingAndInvalidation(t *testing.T) {
	m := NewMachine(CC, 2)
	v := m.NewVar("v", HomeGlobal, 0)
	m.AddProc("reader", func(p *Proc) {
		p.Read(v) // miss: 1 RMR
		p.Read(v) // hit: 0
		p.Read(v) // hit: 0
		p.Read(v) // scheduled after the write below: invalidated, 1 RMR
	})
	m.AddProc("writer", func(p *Proc) {
		p.Write(v, 7) // writer not sole sharer: 1 RMR
	})
	// Startup handshakes occupy one step per process, then: reader
	// performs 3 reads, writer 1 write, reader the final read.
	order := []int{0, 0, 0, 0, 1, 1, 0}
	res := m.Run(RunConfig{Sched: scriptSched(order)})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].RMRs; got != 2 {
		t.Errorf("reader RMRs = %d, want 2", got)
	}
	if got := res.Procs[1].RMRs; got != 1 {
		t.Errorf("writer RMRs = %d, want 1", got)
	}
}

func TestCCExclusiveWriteIsLocal(t *testing.T) {
	res := runOne(t, CC, 1, func(m *Machine) {
		v := m.NewVar("v", HomeGlobal, 0)
		m.AddProc("p", func(p *Proc) {
			p.Write(v, 1)                                // miss: 1
			p.Write(v, 2)                                // exclusive: 0
			p.Read(v)                                    // own copy: 0
			p.RMW(v, func(w Word) Word { return w + 1 }) // exclusive: 0
		})
	})
	if got := res.Procs[0].RMRs; got != 1 {
		t.Errorf("RMRs = %d, want 1", got)
	}
}

func TestDSMHomeAccounting(t *testing.T) {
	res := runOne(t, DSM, 2, func(m *Machine) {
		mine := m.NewVar("mine", 0, 0)
		theirs := m.NewVar("theirs", 1, 0)
		global := m.NewVar("global", HomeGlobal, 0)
		m.AddProc("p0", func(p *Proc) {
			p.Read(mine)       // local: 0
			p.Write(mine, 1)   // local: 0
			p.Read(theirs)     // remote: 1
			p.Write(theirs, 1) // remote: 1
			p.Read(global)     // remote: 1
		})
		m.AddProc("p1", func(p *Proc) {})
	})
	if got := res.Procs[0].RMRs; got != 3 {
		t.Errorf("RMRs = %d, want 3", got)
	}
}

func TestDSMRepeatedLocalAccessFree(t *testing.T) {
	res := runOne(t, DSM, 1, func(m *Machine) {
		v := m.NewVar("v", 0, 0)
		m.AddProc("p", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Write(v, Word(i))
				p.Read(v)
			}
		})
	})
	if got := res.Procs[0].RMRs; got != 0 {
		t.Errorf("RMRs = %d, want 0", got)
	}
}

func TestAwaitWakesOnWrite(t *testing.T) {
	res := runOne(t, CC, 2, func(m *Machine) {
		flag := m.NewVar("flag", HomeGlobal, 0)
		v := m.NewVar("v", HomeGlobal, 0)
		m.AddProc("waiter", func(p *Proc) {
			p.AwaitTrue(flag)
			if got := p.Read(v); got != 42 {
				p.failf("read %d before signal", got)
			}
		})
		m.AddProc("signaler", func(p *Proc) {
			p.Write(v, 42)
			p.Write(flag, 1)
		})
	})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
}

func TestAwaitConditionAlreadyTrue(t *testing.T) {
	runOne(t, CC, 1, func(m *Machine) {
		v := m.NewVar("v", HomeGlobal, 5)
		m.AddProc("p", func(p *Proc) {
			p.AwaitEq(v, 5)
		})
	})
}

func TestAwaitSpinRMRAccountingCC(t *testing.T) {
	// Waiter spins; writer writes the watched var three times with
	// wrong values then the right one. Each re-check after an
	// invalidation costs exactly 1 RMR: 1 (initial read) + 4
	// (re-checks after each write) = 5.
	m := NewMachine(CC, 2)
	v := m.NewVar("v", HomeGlobal, 0)
	m.AddProc("waiter", func(p *Proc) {
		p.AwaitEq(v, 9)
	})
	m.AddProc("writer", func(p *Proc) {
		for _, x := range []Word{1, 2, 3, 9} {
			p.Write(v, x)
		}
	})
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].RMRs; got != 5 {
		t.Errorf("waiter RMRs = %d, want 5", got)
	}
	if got := res.Procs[0].NonLocalSpinReads; got != 0 {
		t.Errorf("CC model reported %d non-local spin reads", got)
	}
}

func TestNonLocalSpinDetectionDSM(t *testing.T) {
	m := NewMachine(DSM, 2)
	v := m.NewVar("v", 1, 0) // homed at the writer: remote to the spinner
	m.AddProc("waiter", func(p *Proc) { p.AwaitTrue(v) })
	m.AddProc("writer", func(p *Proc) {
		p.Write(v, 0) // spurious wake: forces a remote recheck
		p.Write(v, 1)
	})
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].NonLocalSpinReads; got == 0 {
		t.Error("remote spin not detected")
	}
}

func TestLocalSpinDSMIsFree(t *testing.T) {
	m := NewMachine(DSM, 2)
	v := m.NewVar("v", 0, 0) // homed at the spinner
	m.AddProc("waiter", func(p *Proc) { p.AwaitTrue(v) })
	m.AddProc("writer", func(p *Proc) { p.Write(v, 1) })
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].RMRs; got != 0 {
		t.Errorf("local spinner paid %d RMRs", got)
	}
	if got := res.Procs[1].RMRs; got != 1 {
		t.Errorf("remote writer paid %d RMRs, want 1", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewMachine(CC, 2)
	a := m.NewVar("a", HomeGlobal, 0)
	b := m.NewVar("b", HomeGlobal, 0)
	m.AddProc("p0", func(p *Proc) { p.AwaitTrue(a); p.Write(b, 1) })
	m.AddProc("p1", func(p *Proc) { p.AwaitTrue(b); p.Write(a, 1) })
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if !res.Deadlocked {
		t.Fatalf("deadlock not detected: %+v", res)
	}
	if len(res.WaitingProcs) != 2 {
		t.Errorf("WaitingProcs = %v, want both", res.WaitingProcs)
	}
	if res.Err() == nil {
		t.Error("Err() = nil for deadlocked run")
	}
}

func TestMaxStepsTimeout(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.AddProc("spinner", func(p *Proc) {
		for i := 0; ; i++ {
			p.Write(v, Word(i))
		}
	})
	res := m.Run(RunConfig{Sched: RoundRobin{}, MaxSteps: 50})
	if !res.TimedOut {
		t.Fatal("step bound not enforced")
	}
}

func TestMutualExclusionMonitorCatchesOverlap(t *testing.T) {
	m := NewMachine(CC, 2)
	body := func(p *Proc) {
		p.EnterCS()
		p.ExitCS()
	}
	m.AddProc("p0", body)
	m.AddProc("p1", body)
	// Interleave the two EnterCS calls.
	res := m.Run(RunConfig{Sched: scriptSched([]int{0, 1, 0, 1})})
	if res.Violation == nil {
		t.Fatal("overlapping critical sections not detected")
	}
}

func TestCSEntriesCounted(t *testing.T) {
	res := runOne(t, CC, 1, func(m *Machine) {
		m.AddProc("p", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.EnterCS()
				p.ExitCS()
			}
		})
	})
	if res.CSEntries != 5 {
		t.Errorf("CSEntries = %d, want 5", res.CSEntries)
	}
	if res.Procs[0].CSEntries != 5 {
		t.Errorf("proc CSEntries = %d, want 5", res.Procs[0].CSEntries)
	}
}

func TestFetchPhiReturnsOldValue(t *testing.T) {
	runOne(t, CC, 1, func(m *Machine) {
		v := m.NewVar("v", HomeGlobal, phi.Bottom)
		m.AddProc("p", func(p *Proc) {
			prim := phi.FetchAndIncrement{}
			if old := p.FetchPhi(v, prim, phi.Bottom); old != phi.Bottom {
				p.failf("first invocation returned %d", old)
			}
			if old := p.FetchPhi(v, prim, phi.Bottom); old != 1 {
				p.failf("second invocation returned %d", old)
			}
		})
	})
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Result {
		m := NewMachine(CC, 3)
		v := m.NewVar("v", HomeGlobal, 0)
		for i := 0; i < 3; i++ {
			m.AddProc("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.RMW(v, func(w Word) Word { return w + 1 })
					p.Read(v)
				}
			})
		}
		return m.Run(RunConfig{Sched: NewRandom(42)})
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.TotalRMRs() != b.TotalRMRs() {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestStickySchedulerQuantum(t *testing.T) {
	var picks []int
	m := NewMachine(CC, 2)
	v := m.NewVar("v", HomeGlobal, 0)
	for i := 0; i < 2; i++ {
		m.AddProc("p", func(p *Proc) {
			for j := 0; j < 4; j++ {
				p.Write(v, 1)
			}
		})
	}
	res := m.Run(RunConfig{
		Sched:    &Sticky{Quantum: 4},
		Observer: func(_ int64, _ []int, chosen int) { picks = append(picks, chosen) },
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v, want %v", picks, want)
		}
	}
}

func TestDictAllocatesPerKey(t *testing.T) {
	m := NewMachine(DSM, 1)
	d := m.NewDict("sig", HomeGlobal, 0)
	a, b := d.At(10), d.At(20)
	if a == b {
		t.Fatal("distinct keys share a variable")
	}
	if d.At(10) != a {
		t.Fatal("repeated key did not return the same variable")
	}
	m.AddProc("p", func(p *Proc) {
		p.Write(d.At(10), 1)
		if p.Read(d.At(20)) != 0 {
			p.failf("cross-key interference")
		}
	})
	if err := m.Run(RunConfig{Sched: RoundRobin{}}).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestValueInspection(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 3)
	m.AddProc("p", func(p *Proc) { p.Write(v, 9) })
	if err := m.Run(RunConfig{Sched: RoundRobin{}}).Err(); err != nil {
		t.Fatal(err)
	}
	if got := m.Value(v); got != 9 {
		t.Errorf("Value = %d, want 9", got)
	}
}

// scriptSched replays a fixed pick sequence, then falls back to the
// lowest runnable id.
type scriptSched []int

func (s scriptSched) Pick(step int64, runnable []int, _ int) int {
	if step < int64(len(s)) && contains(runnable, s[step]) {
		return s[step]
	}
	return runnable[0]
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	if b.has(0) || b.has(129) {
		t.Fatal("fresh bitset non-empty")
	}
	b.add(0)
	b.add(129)
	b.add(129) // idempotent
	if !b.has(0) || !b.has(129) || b.has(64) {
		t.Fatal("membership wrong after add")
	}
	if b.hasOnly(0) {
		t.Fatal("hasOnly true with two members")
	}
	b.clear()
	b.add(64)
	if !b.hasOnly(64) {
		t.Fatal("hasOnly false for singleton")
	}
	b.clear()
	if b.has(64) || b.count != 0 {
		t.Fatal("clear failed")
	}
}

func TestNewMachinePanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nproc=0")
		}
	}()
	NewMachine(CC, 0)
}

func TestAddProcBeyondCapacityPanics(t *testing.T) {
	m := NewMachine(CC, 1)
	m.AddProc("p", func(*Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for excess AddProc")
		}
	}()
	m.AddProc("q", func(*Proc) {})
}

func TestModelString(t *testing.T) {
	if CC.String() != "CC" || DSM.String() != "DSM" {
		t.Fatal("Model.String wrong")
	}
}

func TestCCUpdateSpinsAreFreeAfterFirstRead(t *testing.T) {
	// Under write-update, the waiter misses once; every re-check after
	// a writer update is an in-place refreshed hit (0 RMRs). The
	// writer pays per write instead.
	m := NewMachine(CCUpdate, 2)
	v := m.NewVar("v", HomeGlobal, 0)
	m.AddProc("waiter", func(p *Proc) { p.AwaitEq(v, 9) })
	m.AddProc("writer", func(p *Proc) {
		for _, x := range []Word{1, 2, 3, 9} {
			p.Write(v, x)
		}
	})
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].RMRs; got != 1 {
		t.Errorf("waiter RMRs = %d, want 1 (cold miss only)", got)
	}
	if got := res.Procs[1].RMRs; got != 4 {
		t.Errorf("writer RMRs = %d, want 4 (one update per write)", got)
	}
}

func TestCCUpdateSoleOwnerWritesAreLocal(t *testing.T) {
	m := NewMachine(CCUpdate, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.AddProc("p", func(p *Proc) {
		p.Write(v, 1) // cold miss: 1
		p.Write(v, 2) // sole owner: 0
		p.Read(v)     // hit: 0
	})
	res := m.Run(RunConfig{Sched: RoundRobin{}})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].RMRs; got != 1 {
		t.Errorf("RMRs = %d, want 1", got)
	}
}

func TestModelStringCCUpdate(t *testing.T) {
	if CCUpdate.String() != "CC-update" {
		t.Fatal("CCUpdate.String wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model string wrong")
	}
}

func TestHotVarsAttribution(t *testing.T) {
	m := NewMachine(DSM, 2)
	hot := m.NewVar("hot", HomeGlobal, 0)
	cold := m.NewVar("cold", 0, 0)
	m.AddProc("p0", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Write(hot, Word(i))  // remote every time
			p.Write(cold, Word(i)) // local
		}
	})
	m.AddProc("p1", func(p *Proc) { p.Read(hot) })
	if err := m.Run(RunConfig{Sched: RoundRobin{}}).Err(); err != nil {
		t.Fatal(err)
	}
	vars := m.HotVars(5)
	if len(vars) != 1 || vars[0].Name != "hot" || vars[0].RMRs != 11 {
		t.Fatalf("HotVars = %+v, want hot with 11 RMRs", vars)
	}
	if got := m.HotVars(0); len(got) != 1 {
		t.Fatalf("HotVars(0) should return all entries, got %+v", got)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	// The engine must fully unwind its process goroutines on every
	// exit path: completion, violation, deadlock, and timeout.
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 300; i++ {
		switch i % 4 {
		case 0: // completion
			m := NewMachine(CC, 3)
			v := m.NewVar("v", HomeGlobal, 0)
			for j := 0; j < 3; j++ {
				m.AddProc("p", func(p *Proc) { p.Write(v, 1) })
			}
			m.Run(RunConfig{Sched: RoundRobin{}})
		case 1: // violation
			m := NewMachine(CC, 2)
			body := func(p *Proc) { p.EnterCS(); p.ExitCS() }
			m.AddProc("a", body)
			m.AddProc("b", body)
			m.Run(RunConfig{Sched: scriptSched([]int{0, 1, 0, 1})})
		case 2: // deadlock
			m := NewMachine(CC, 2)
			never := m.NewVar("never", HomeGlobal, 0)
			m.AddProc("a", func(p *Proc) { p.AwaitTrue(never) })
			m.AddProc("b", func(p *Proc) { p.AwaitTrue(never) })
			m.Run(RunConfig{Sched: RoundRobin{}})
		case 3: // timeout
			m := NewMachine(CC, 1)
			v := m.NewVar("v", HomeGlobal, 0)
			m.AddProc("spin", func(p *Proc) {
				for {
					p.Write(v, 1)
				}
			})
			m.Run(RunConfig{Sched: RoundRobin{}, MaxSteps: 20})
		}
	}
	for wait := 0; wait < 100; wait++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
