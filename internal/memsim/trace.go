package memsim

import (
	"fmt"
	"strings"
)

// TraceKind labels one recorded event.
type TraceKind int

// The recorded event kinds.
const (
	// TraceRead is an ordinary read.
	TraceRead TraceKind = iota
	// TraceWrite is an ordinary write.
	TraceWrite
	// TraceRMW is an atomic read-modify-write.
	TraceRMW
	// TraceSpinRead is a busy-wait re-check read.
	TraceSpinRead
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceRMW:
		return "rmw"
	case TraceSpinRead:
		return "spin-read"
	default:
		return "?"
	}
}

// TraceEvent is one shared-memory operation, as delivered to the
// machine's event sinks (and recorded by the built-in trace ring).
type TraceEvent struct {
	// Step is the global scheduling step at which the operation ran.
	Step int64
	// Proc is the acting process id.
	Proc int
	// Kind is the operation type.
	Kind TraceKind
	// Phase is the algorithm phase the acting process was in
	// (entry/cs/exit, or ncs when the process tracks no phases).
	Phase Phase
	// Var is the accessed variable's name.
	Var string
	// Before and After are the variable's values around the
	// operation (equal for reads).
	Before, After Word
	// Remote reports whether the operation was charged a remote
	// memory reference under the machine's model — the per-event form
	// of the RMR accounting, letting sinks attribute costs without
	// re-deriving locality.
	Remote bool
}

// EventSink observes every shared-memory operation of a run. Sinks are
// invoked synchronously from the simulated process's scheduling window,
// so they see a totally ordered event stream and need no locking; they
// must not call back into the machine. Recording costs no simulated
// steps or RMRs.
type EventSink interface {
	// Record is called once per shared-memory operation.
	Record(ev TraceEvent)
}

// PhaseEvent is one algorithm-phase transition of a process, as
// delivered to sinks that also implement PhaseSink. Transitions are
// driven by BeginEntrySection / EnterCS / ExitCS / EndExitSection.
type PhaseEvent struct {
	// Step is the global scheduling step at the transition.
	Step int64
	// Proc is the transitioning process id.
	Proc int
	// From and To are the phases around the transition.
	From, To Phase
}

// PhaseSink is an EventSink that additionally observes phase
// transitions, with the same delivery contract as Record: synchronous,
// totally ordered, no simulated cost. Sinks attached via AttachSink
// that implement PhaseSink receive both streams.
type PhaseSink interface {
	EventSink
	// RecordPhase is called once per phase transition.
	RecordPhase(ev PhaseEvent)
}

// AttachSink subscribes a sink to the machine's event stream. Call
// before Run. Multiple sinks may be attached; each receives every
// event, in order. Sinks that also implement PhaseSink additionally
// receive phase-transition events.
func (m *Machine) AttachSink(s EventSink) {
	if s == nil {
		panic("memsim: AttachSink(nil)")
	}
	m.sinks = append(m.sinks, s)
	if ps, ok := s.(PhaseSink); ok {
		m.phaseSinks = append(m.phaseSinks, ps)
	}
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	if e.Before == e.After {
		return fmt.Sprintf("[%06d] p%d %-9s %s = %d", e.Step, e.Proc, e.Kind, e.Var, e.Before)
	}
	return fmt.Sprintf("[%06d] p%d %-9s %s: %d -> %d", e.Step, e.Proc, e.Kind, e.Var, e.Before, e.After)
}

// traceRing is a fixed-capacity ring buffer of the most recent events —
// the built-in EventSink behind EnableTrace.
type traceRing struct {
	events []TraceEvent
	next   int
	filled bool
}

// Record implements EventSink.
func (r *traceRing) Record(ev TraceEvent) {
	r.events[r.next] = ev
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// EnableTrace starts recording the machine's last `capacity`
// shared-memory operations. Call before Run; retrieve with Trace after
// the run (typically when diagnosing a violation or deadlock). Tracing
// costs no simulated steps or RMRs. Calling EnableTrace again replaces
// the previous ring; sinks attached with AttachSink are unaffected.
func (m *Machine) EnableTrace(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	ring := &traceRing{events: make([]TraceEvent, capacity)}
	if m.trace != nil {
		for i, s := range m.sinks {
			if s == EventSink(m.trace) {
				m.sinks[i] = ring
			}
		}
	} else {
		m.sinks = append(m.sinks, ring)
	}
	m.trace = ring
}

// Trace returns the recorded events, oldest first. It returns nil if
// EnableTrace was not called.
func (m *Machine) Trace() []TraceEvent {
	if m.trace == nil {
		return nil
	}
	r := m.trace
	if !r.filled {
		out := make([]TraceEvent, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// FormatTrace renders the recorded events as a multi-line string.
func (m *Machine) FormatTrace() string {
	events := m.Trace()
	if len(events) == 0 {
		return "(no trace recorded)"
	}
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// record delivers one event to every attached sink.
func (m *Machine) record(p *Proc, kind TraceKind, vv *variable, before, after Word, remote bool) {
	ev := TraceEvent{
		Step:   m.steps,
		Proc:   p.id,
		Kind:   kind,
		Phase:  p.phase,
		Var:    vv.name,
		Before: before,
		After:  after,
		Remote: remote,
	}
	for _, s := range m.sinks {
		s.Record(ev)
	}
}

// recordPhase delivers one phase transition to every phase-aware sink.
func (m *Machine) recordPhase(p *Proc, from, to Phase) {
	if len(m.phaseSinks) == 0 {
		return
	}
	ev := PhaseEvent{Step: m.steps, Proc: p.id, From: from, To: to}
	for _, s := range m.phaseSinks {
		s.RecordPhase(ev)
	}
}
