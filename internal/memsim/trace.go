package memsim

import (
	"fmt"
	"strings"
)

// TraceKind labels one recorded event.
type TraceKind int

// The recorded event kinds.
const (
	// TraceRead is an ordinary read.
	TraceRead TraceKind = iota
	// TraceWrite is an ordinary write.
	TraceWrite
	// TraceRMW is an atomic read-modify-write.
	TraceRMW
	// TraceSpinRead is a busy-wait re-check read.
	TraceSpinRead
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceRMW:
		return "rmw"
	case TraceSpinRead:
		return "spin-read"
	default:
		return "?"
	}
}

// TraceEvent is one shared-memory operation, as recorded by the
// machine's trace ring.
type TraceEvent struct {
	// Step is the global scheduling step at which the operation ran.
	Step int64
	// Proc is the acting process id.
	Proc int
	// Kind is the operation type.
	Kind TraceKind
	// Var is the accessed variable's name.
	Var string
	// Before and After are the variable's values around the
	// operation (equal for reads).
	Before, After Word
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	if e.Before == e.After {
		return fmt.Sprintf("[%06d] p%d %-9s %s = %d", e.Step, e.Proc, e.Kind, e.Var, e.Before)
	}
	return fmt.Sprintf("[%06d] p%d %-9s %s: %d -> %d", e.Step, e.Proc, e.Kind, e.Var, e.Before, e.After)
}

// traceRing is a fixed-capacity ring buffer of the most recent events.
type traceRing struct {
	events []TraceEvent
	next   int
	filled bool
}

// EnableTrace starts recording the machine's last `capacity`
// shared-memory operations. Call before Run; retrieve with Trace after
// the run (typically when diagnosing a violation or deadlock). Tracing
// costs no simulated steps or RMRs.
func (m *Machine) EnableTrace(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	m.trace = &traceRing{events: make([]TraceEvent, capacity)}
}

// Trace returns the recorded events, oldest first. It returns nil if
// EnableTrace was not called.
func (m *Machine) Trace() []TraceEvent {
	if m.trace == nil {
		return nil
	}
	r := m.trace
	if !r.filled {
		out := make([]TraceEvent, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// FormatTrace renders the recorded events as a multi-line string.
func (m *Machine) FormatTrace() string {
	events := m.Trace()
	if len(events) == 0 {
		return "(no trace recorded)"
	}
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// record appends one event to the ring.
func (m *Machine) record(p *Proc, kind TraceKind, vv *variable, before, after Word) {
	r := m.trace
	r.events[r.next] = TraceEvent{
		Step:   m.steps,
		Proc:   p.id,
		Kind:   kind,
		Var:    vv.name,
		Before: before,
		After:  after,
	}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}
