package memsim

import (
	"reflect"
	"testing"
)

// rangeBuild is a small always-passing two-process workload with real
// contention (both processes CAS-loop on one variable), so the
// explorer generates non-trivial waves.
func rangeBuild() *Machine {
	m := NewMachine(CC, 2)
	v := m.NewVar("v", HomeGlobal, 0)
	for p := 0; p < 2; p++ {
		m.AddProc("p", func(pr *Proc) {
			for i := 0; i < 2; i++ {
				pr.Read(v)
				pr.Write(v, Word(i))
			}
		})
	}
	return m
}

// TestRunScheduleRangeReassemblesRun drives the exported wave-range
// API exactly like an external coordinator would — seed with RootWave,
// execute each wave in arbitrary-sized contiguous ranges, concatenate
// Children by index — and checks the reassembled exploration matches
// Explorer.Run bit for bit (runs per depth, exhaustion).
func TestRunScheduleRangeReassemblesRun(t *testing.T) {
	ref := (&Explorer{Build: rangeBuild, MaxPreemptions: 2, MaxSteps: 5000}).Run()
	if ref.Err != nil || !ref.Exhausted {
		t.Fatalf("reference run: %+v", ref)
	}

	e := &Explorer{Build: rangeBuild, MaxPreemptions: 2, MaxSteps: 5000}
	wave := RootWave()
	var depthRuns []int
	for depth := 0; len(wave) > 0; depth++ {
		// Split the wave into ranges of 3 and execute them out of
		// order — the merge is by index, so order must not matter.
		outs := make([]ScheduleOutcome, len(wave))
		var ranges [][2]int
		for lo := 0; lo < len(wave); lo += 3 {
			hi := lo + 3
			if hi > len(wave) {
				hi = len(wave)
			}
			ranges = append(ranges, [2]int{lo, hi})
		}
		for i := len(ranges) - 1; i >= 0; i-- {
			lo, hi := ranges[i][0], ranges[i][1]
			copy(outs[lo:hi], e.RunScheduleRange(wave[lo:hi]))
		}
		depthRuns = append(depthRuns, len(wave))
		var next [][]Preemption
		for i := range outs {
			if outs[i].Err != nil {
				t.Fatalf("unexpected failure at depth %d index %d: %v", depth, i, outs[i].Err)
			}
			next = append(next, outs[i].Children...)
		}
		wave = next
	}
	if !reflect.DeepEqual(depthRuns, ref.DepthRuns) {
		t.Fatalf("range-driven depth runs %v, want %v", depthRuns, ref.DepthRuns)
	}
}

// TestResolvedPreemptions pins the MaxPreemptions encoding the
// external drivers depend on.
func TestResolvedPreemptions(t *testing.T) {
	for _, tc := range []struct{ enc, want int }{
		{ZeroPreemptions, 0},
		{0, DefaultPreemptions},
		{3, 3},
	} {
		e := &Explorer{MaxPreemptions: tc.enc}
		if got := e.ResolvedPreemptions(); got != tc.want {
			t.Errorf("ResolvedPreemptions(%d) = %d, want %d", tc.enc, got, tc.want)
		}
	}
}

// TestParseMemoryModelRoundTrip pins the wire spelling of every model.
func TestParseMemoryModelRoundTrip(t *testing.T) {
	for _, m := range []Model{CC, DSM, CCUpdate} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("PRAM"); err == nil {
		t.Fatal("ParseModel accepted an unknown model")
	}
}
