package memsim

import (
	"fmt"
	"sort"
)

// This file is the abort-schedule half of the adversary: deterministic
// delivery of abort-the-request signals to processes competing in an
// abortable mutual exclusion algorithm (Jayanti & Jayanti's
// constant-amortized-RMR deterministic abortable mutex is the model
// workload). An abort schedule is data, like a preemption schedule:
// it fires as a pure function of the interleaving, so the explorer can
// enumerate abort schedules exactly the way it enumerates preemption
// placements and every (abort schedule × preemption schedule) product
// point is replayable bit for bit.
//
// Delivery is synchronous with the target's own execution: a point
// (proc, passage, event) fires when the process resumes from its
// event-th scheduling point inside the entry section of its passage-th
// passage (event 0 fires in BeginEntrySection itself, before the first
// operation). A blocked process accrues no events, so a request never
// materializes "inside" a suspended await — the interleavings where an
// establishment races the abort are instead covered by the explorer's
// preemption placements around the fire point, which keeps the whole
// mechanism free of cross-process wake machinery and therefore
// trivially deterministic.

// AbortPoint requests one abort delivery: process Proc receives an
// abort request at entry-section event Event of its Passage-th passage
// (both 0-based; passages are counted by BeginEntrySection). A point
// whose passage is skipped or whose event count is never reached
// simply does not fire — the run is then identical to one scheduled
// without it.
type AbortPoint struct {
	// Proc is the target process id.
	Proc int
	// Passage selects which of the process's passages to abort
	// (0-based BeginEntrySection count). Aborting a re-request is
	// Passage = 1 of the same entry.
	Passage int
	// Event is the entry-section scheduling-point index at which the
	// request fires: 0 fires before the passage's first operation, k
	// fires as the process resumes from its k-th operation.
	Event int
}

// String renders the point in the compact p/passage/event form used in
// conformance-failure messages.
func (a AbortPoint) String() string {
	return fmt.Sprintf("p%d@%d.%d", a.Proc, a.Passage, a.Event)
}

// ScheduleAborts adds abort points to the machine's schedule; call any
// time before Run. Points are delivered per process in (Passage,
// Event) order regardless of the order given here.
func (m *Machine) ScheduleAborts(points ...AbortPoint) {
	for _, pt := range points {
		if pt.Proc < 0 || pt.Proc >= m.nproc {
			panic(fmt.Sprintf("memsim: abort point %v targets an invalid process (nproc=%d)", pt, m.nproc))
		}
		if pt.Passage < 0 || pt.Event < 0 {
			panic(fmt.Sprintf("memsim: abort point %v has a negative coordinate", pt))
		}
	}
	m.abortPoints = append(m.abortPoints, points...)
}

// distributeAbortPoints hands each process its slice of the schedule,
// sorted into firing order. Run calls it once, before processes start.
func (m *Machine) distributeAbortPoints() {
	if len(m.abortPoints) == 0 {
		return
	}
	pts := append([]AbortPoint(nil), m.abortPoints...)
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Proc != pts[j].Proc {
			return pts[i].Proc < pts[j].Proc
		}
		if pts[i].Passage != pts[j].Passage {
			return pts[i].Passage < pts[j].Passage
		}
		return pts[i].Event < pts[j].Event
	})
	for _, pt := range pts {
		p := m.procs[pt.Proc]
		p.abortPoints = append(p.abortPoints, pt)
	}
}

// fireAbortPoints delivers every due abort point for the process's
// current (passage, event) position. Points for passages already over
// are skipped; at most one request is pending at a time, so points
// firing while one is pending collapse into it.
func (p *Proc) fireAbortPoints() {
	for p.abortNext < len(p.abortPoints) {
		pt := p.abortPoints[p.abortNext]
		if pt.Passage > p.passage {
			return
		}
		if pt.Passage == p.passage && pt.Event > p.entryEvents {
			return
		}
		p.abortNext++
		if pt.Passage == p.passage && !p.abortPending {
			p.abortPending = true
			p.abortFireSteps = p.stats.Steps
		}
	}
}

// AbortRequested reports whether an abort request is pending for the
// process. It is instrumentation (no simulated cost, not a scheduling
// point): abortable entry sections poll it at their decision points
// and unwind via AbortPassage when it is set.
func (p *Proc) AbortRequested() bool { return p.abortPending }

// resolveAbort closes a pending request, folding its steps-to-
// resolution into the wait-free-abort statistic. Reached from
// AbortPassage (withdrawal) and EnterCS (acquisition outran the
// request).
func (p *Proc) resolveAbort() {
	if !p.abortPending {
		return
	}
	p.abortPending = false
	if d := p.stats.Steps - p.abortFireSteps; d > p.stats.MaxAbortResolveSteps {
		p.stats.MaxAbortResolveSteps = d
	}
}

// EnumerateAbortSchedules returns the canonical abort-schedule family
// for nproc processes over entry events 0..maxEvent: first the empty
// schedule, then every single-point schedule on passage 0 in (proc,
// event) order, then — when retry is true — the double-abort schedules
// hitting a process's first passage and its re-request at the same
// event, then the same-event cross-process pairs. The order is the
// enumeration's identity: conformance artifacts and failure reports
// index into it, so it must never be reordered, only extended.
func EnumerateAbortSchedules(nproc, maxEvent int, retry bool) [][]AbortPoint {
	scheds := [][]AbortPoint{nil}
	for proc := 0; proc < nproc; proc++ {
		for ev := 0; ev <= maxEvent; ev++ {
			scheds = append(scheds, []AbortPoint{{Proc: proc, Passage: 0, Event: ev}})
		}
	}
	if retry {
		for proc := 0; proc < nproc; proc++ {
			for ev := 0; ev <= maxEvent; ev++ {
				scheds = append(scheds, []AbortPoint{
					{Proc: proc, Passage: 0, Event: ev},
					{Proc: proc, Passage: 1, Event: ev},
				})
			}
		}
	}
	for a := 0; a < nproc; a++ {
		for b := a + 1; b < nproc; b++ {
			for ev := 0; ev <= maxEvent; ev++ {
				scheds = append(scheds, []AbortPoint{
					{Proc: a, Passage: 0, Event: ev},
					{Proc: b, Passage: 0, Event: ev},
				})
			}
		}
	}
	return scheds
}

// FormatAbortSchedule renders a schedule for failure messages: the
// empty schedule prints as "-" so reports stay grep-able.
func FormatAbortSchedule(sched []AbortPoint) string {
	if len(sched) == 0 {
		return "-"
	}
	s := ""
	for i, pt := range sched {
		if i > 0 {
			s += ","
		}
		s += pt.String()
	}
	return s
}
