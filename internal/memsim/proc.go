package memsim

import (
	"fmt"

	"fetchphi/internal/phi"
)

// procStatus is the engine-side scheduling state of a process.
type procStatus int

const (
	// statusReady: the process is blocked at a scheduling point,
	// ready to perform its next operation when resumed.
	statusReady procStatus = iota
	// statusWaiting: the process is inside an Await whose condition
	// was false; it must not be resumed until a watched variable is
	// written.
	statusWaiting
	// statusRecheck: a watched variable was written; the process is
	// eligible to be resumed for a condition re-check.
	statusRecheck
	// statusDone: the process body returned (or was killed).
	statusDone
)

// reportKind is what a process goroutine tells the engine when it
// hands control back.
type reportKind int

const (
	reportStep    reportKind = iota // at a scheduling point, ready for next op
	reportBlocked                   // await condition false; now waiting
	reportDone                      // body returned
	// reportViolation: an assertion failed inside the process body and
	// the run is being torn down. This is about the RUN, not the
	// process's current request — "abort" in this package's API always
	// means abort-the-request (AbortPoint, AwaitAbortable,
	// AbortPassage), never a detected violation.
	reportViolation
)

// killed is the panic sentinel used to unwind a process goroutine when
// the engine tears a run down.
type killed struct{}

// violation is the panic sentinel carrying an assertion failure out of
// a process body. (It was once called `abort`, a name now reserved for
// abortable mutual exclusion's abort-the-request machinery.)
type violation struct{ err error }

// ProcStats accumulates the per-process metrics the experiments report.
type ProcStats struct {
	// RMRs is the number of remote memory references, under the
	// machine's model.
	RMRs int64
	// Steps is the number of scheduling points executed.
	Steps int64
	// CSEntries is the number of critical-section entries.
	CSEntries int64
	// NonLocalSpinReads counts busy-wait re-check reads of variables
	// not homed at the spinner (DSM model only). A local-spin
	// algorithm must keep this at zero.
	NonLocalSpinReads int64
	// MaxRMRGap is the largest number of RMRs spent on a single
	// entry/exit pair (set by the CS monitor).
	MaxRMRGap int64
	// AwaitBlocks counts how many times the process actually blocked
	// in an Await (condition false on first evaluation) — a latency
	// indicator the RMR measure does not capture.
	AwaitBlocks int64
	// PhaseRMRs breaks RMRs down by the algorithm phase that incurred
	// them, indexed by Phase. Phase transitions are driven by
	// BeginEntrySection/EnterCS/ExitCS/EndExitSection; processes that
	// never call those charge everything to PhaseNCS.
	PhaseRMRs [NumPhases]int64
	// Aborts counts passages the process withdrew from after an abort
	// request (AbortPassage calls). A passage that reached the critical
	// section despite a pending request is a CS entry, not an abort.
	Aborts int64
	// MaxAbortResolveSteps is the largest number of the process's OWN
	// scheduling points between an abort request firing and its
	// resolution (withdrawal via AbortPassage, or CS entry when the
	// acquisition won the race). Wait-free aborts keep this bounded by
	// a constant independent of the schedule; the abort-conformance
	// tests assert a bound over every explored schedule.
	MaxAbortResolveSteps int64
}

// Proc is one simulated process. All its methods must be called from
// the process's own body function; they are the process's interface to
// the simulated shared memory.
type Proc struct {
	m    *Machine
	id   int
	name string
	body func(*Proc)

	resume chan bool       // engine → proc; true = killed
	report chan reportKind // proc → engine

	status     procStatus
	watch      []Var
	watchEpoch uint64

	stats        ProcStats
	phase        Phase
	rmrAtAcquire int64 // RMR count when the current entry section began

	// Abort-schedule state (see abort.go). passage counts
	// BeginEntrySection calls (-1 before the first); entryEvents counts
	// the process's scheduling points inside the current entry section.
	// abortPoints is this process's slice of the machine's schedule, in
	// firing order; abortPending is the delivered-but-unresolved
	// request.
	passage        int
	entryEvents    int
	abortPoints    []AbortPoint
	abortNext      int
	abortPending   bool
	abortFireSteps int64 // stats.Steps when the pending request fired
}

// ID returns the process id (0..N-1).
func (p *Proc) ID() int { return p.id }

// Machine returns the machine this process runs on.
func (p *Proc) Machine() *Machine { return p.m }

// Model is shorthand for p.Machine().Model().
func (p *Proc) Model() Model { return p.m.model }

// Stats returns the statistics accumulated so far. Call after the run
// completes.
func (p *Proc) Stats() ProcStats { return p.stats }

// AddProc registers a simulated process. Processes must be added before
// Run; ids are assigned in registration order and must stay below the
// nproc the machine was sized for.
func (m *Machine) AddProc(name string, body func(*Proc)) *Proc {
	if len(m.procs) >= m.nproc {
		panic(fmt.Sprintf("memsim: more than %d processes added", m.nproc))
	}
	p := &Proc{
		m:       m,
		id:      len(m.procs),
		name:    name,
		body:    body,
		resume:  make(chan bool),
		report:  make(chan reportKind),
		passage: -1,
	}
	m.procs = append(m.procs, p)
	return p
}

// yield hands control to the engine and blocks until resumed. It
// panics with the kill sentinel when the engine is tearing down.
//
// Every resumption inside an entry section is one abort-schedule
// "event" (see AbortPoint.Event): pending abort points fire here,
// synchronously within the process's own execution, which is what
// keeps abort delivery a pure function of the schedule.
func (p *Proc) yield(kind reportKind) {
	p.report <- kind
	if <-p.resume {
		panic(killed{})
	}
	p.stats.Steps++
	if p.phase == PhaseEntry {
		p.entryEvents++
		p.fireAbortPoints()
	}
}

// Read performs an atomic read of v. One scheduling point.
func (p *Proc) Read(v Var) Word {
	p.yield(reportStep)
	return p.m.doRead(p, v, false)
}

// Write performs an atomic write of x to v. One scheduling point.
func (p *Proc) Write(v Var, x Word) {
	p.yield(reportStep)
	p.m.doWrite(p, v, x)
}

// RMW atomically replaces v's value with f(v) and returns the old
// value. One scheduling point. f must be pure.
func (p *Proc) RMW(v Var, f func(Word) Word) Word {
	p.yield(reportStep)
	return p.m.doRMW(p, v, f)
}

// FetchPhi invokes a fetch-and-φ primitive on v with the given input,
// returning the variable's old value (the paper's convention).
func (p *Proc) FetchPhi(v Var, prim phi.Primitive, input Word) Word {
	return p.RMW(v, func(old Word) Word { return prim.Apply(old, input) })
}

// Await blocks until cond holds. cond is re-evaluated (atomically) each
// time one of the watched variables is written; reads it performs are
// charged RMRs like ordinary reads, with spin accounting. Every
// variable cond reads must be in watch, or wake-ups can be missed.
func (p *Proc) Await(cond func(read func(Var) Word) bool, watch ...Var) {
	if len(watch) == 0 {
		panic("memsim: Await with empty watch set")
	}
	p.watch = watch
	p.yield(reportStep)
	for {
		if p.evalCond(cond) {
			p.watch = nil
			p.watchEpoch++
			return
		}
		p.stats.AwaitBlocks++
		p.m.registerWatch(p)
		p.yield(reportBlocked)
	}
}

// AwaitAbortable is Await for abortable entry sections: it returns
// true, without blocking further, as soon as an abort request is
// pending for this process — whether the request fired before the call
// or at one of its re-check points. It returns false when cond holds
// (checked after the abort flag, so a request that races the
// condition's establishment reports as an abort; callers that must
// distinguish re-inspect shared state under their own locks). The
// watch contract is Await's.
func (p *Proc) AwaitAbortable(cond func(read func(Var) Word) bool, watch ...Var) (aborted bool) {
	if len(watch) == 0 {
		panic("memsim: AwaitAbortable with empty watch set")
	}
	p.watch = watch
	p.yield(reportStep)
	for {
		if p.abortPending {
			p.watch = nil
			p.watchEpoch++
			return true
		}
		if p.evalCond(cond) {
			p.watch = nil
			p.watchEpoch++
			return false
		}
		p.stats.AwaitBlocks++
		p.m.registerWatch(p)
		p.yield(reportBlocked)
	}
}

// evalCond runs one atomic re-check, charging spin-read RMRs.
func (p *Proc) evalCond(cond func(read func(Var) Word) bool) bool {
	read := func(v Var) Word { return p.m.doRead(p, v, true) }
	return cond(read)
}

// AwaitEq blocks until v's value equals want.
func (p *Proc) AwaitEq(v Var, want Word) {
	p.Await(func(read func(Var) Word) bool { return read(v) == want }, v)
}

// AwaitTrue blocks until v is nonzero (boolean true).
func (p *Proc) AwaitTrue(v Var) {
	p.Await(func(read func(Var) Word) bool { return read(v) != 0 }, v)
}

// AwaitNonBottom blocks until v differs from ⊥.
func (p *Proc) AwaitNonBottom(v Var) {
	p.Await(func(read func(Var) Word) bool { return read(v) != phi.Bottom }, v)
}

// EnterCS marks entry to the critical section and asserts mutual
// exclusion. One scheduling point, so overlapping critical sections of
// two processes are observable by the engine.
func (p *Proc) EnterCS() {
	p.yield(reportStep)
	if occ := p.m.csOccupant; occ != -1 {
		p.failf("mutual exclusion violated: process %d entered the critical section while process %d held it", p.id, occ)
	}
	p.m.csOccupant = p.id
	p.m.csEntries++
	p.stats.CSEntries++
	// An abort request the acquisition outran lapses here: the passage
	// completes normally, and the steps-to-resolution still count
	// against the wait-free-abort bound.
	p.resolveAbort()
	from := p.phase
	p.phase = PhaseCS
	p.m.recordPhase(p, from, PhaseCS)
}

// ExitCS marks exit from the critical section. One scheduling point.
func (p *Proc) ExitCS() {
	p.yield(reportStep)
	if p.m.csOccupant != p.id {
		p.failf("critical-section exit by process %d, but occupant is %d", p.id, p.m.csOccupant)
	}
	p.m.csOccupant = -1
	from := p.phase
	p.phase = PhaseExit
	p.m.recordPhase(p, from, PhaseExit)
}

// BeginEntrySection records the RMR count at the start of an entry
// section so EndExitSection can attribute a per-entry RMR cost, and
// switches the process's phase to PhaseEntry. It also starts a new
// passage for the abort schedule: the passage index advances, the
// entry-event counter resets, and any abort point targeting event 0 of
// the new passage fires immediately.
func (p *Proc) BeginEntrySection() {
	p.rmrAtAcquire = p.stats.RMRs
	p.passage++
	p.entryEvents = 0
	p.fireAbortPoints()
	from := p.phase
	p.phase = PhaseEntry
	p.m.recordPhase(p, from, PhaseEntry)
}

// EndExitSection closes the RMR window opened by BeginEntrySection and
// returns this entry's RMR cost (entry + CS + exit sections), so
// callers can histogram the per-entry distribution rather than keep
// only the maximum.
func (p *Proc) EndExitSection() int64 {
	gap := p.stats.RMRs - p.rmrAtAcquire
	if gap > p.stats.MaxRMRGap {
		p.stats.MaxRMRGap = gap
	}
	from := p.phase
	p.phase = PhaseNCS
	p.m.recordPhase(p, from, PhaseNCS)
	return gap
}

// AbortPassage ends a passage the process withdrew from: the entry
// section observed the pending abort request and unwound. It resolves
// the request (recording steps-to-resolution), counts the abort,
// closes the RMR window opened by BeginEntrySection, and returns the
// aborted passage's RMR cost. The process's phase returns to PhaseNCS;
// a re-request is simply the next BeginEntrySection.
//
// Calling it with no pending request is a harness bug and fails the
// run: withdrawal must only happen in response to a delivered abort.
func (p *Proc) AbortPassage() int64 {
	if !p.abortPending {
		p.failf("process %d aborted a passage with no abort request pending", p.id)
	}
	p.resolveAbort()
	p.stats.Aborts++
	gap := p.stats.RMRs - p.rmrAtAcquire
	from := p.phase
	p.phase = PhaseNCS
	p.m.recordPhase(p, from, PhaseNCS)
	return gap
}

// failf aborts the run with a violation and unwinds this process.
func (p *Proc) failf(format string, args ...any) {
	panic(violation{err: fmt.Errorf("memsim: "+format, args...)})
}

// Fail aborts the run, recording a violation detected by algorithm- or
// harness-level assertion code running inside this process (e.g. the
// side-contract checks of the two-process mutex). The run's Result
// reports it like any built-in violation.
func (p *Proc) Fail(format string, args ...any) {
	panic(violation{err: fmt.Errorf(format, args...)})
}
