package memsim

import (
	"reflect"
	"testing"
)

// TestAbortFiresAtScheduledEvent: a point at event k becomes visible to
// AbortRequested exactly after the k-th entry-section operation (event 0
// before the first).
func TestAbortFiresAtScheduledEvent(t *testing.T) {
	for _, ev := range []int{0, 1, 2, 4} {
		observed := -1
		m := NewMachine(CC, 1)
		v := m.NewVar("v", HomeGlobal, 0)
		m.ScheduleAborts(AbortPoint{Proc: 0, Passage: 0, Event: ev})
		m.AddProc("p", func(p *Proc) {
			p.BeginEntrySection()
			for i := 0; i < 4; i++ {
				if p.AbortRequested() && observed < 0 {
					observed = i
				}
				p.Write(v, Word(i))
			}
			if p.AbortRequested() && observed < 0 {
				observed = 4
			}
			p.AbortPassage()
		})
		if err := m.Run(RunConfig{}).Err(); err != nil {
			t.Fatal(err)
		}
		if observed != ev {
			t.Fatalf("point at event %d first observed at operation %d", ev, observed)
		}
	}
}

// TestAbortTargetsPassage: a passage-1 point leaves passage 0 alone and
// aborts the re-request; later passages are untouched.
func TestAbortTargetsPassage(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.ScheduleAborts(AbortPoint{Proc: 0, Passage: 1, Event: 0})
	var aborted []int
	m.AddProc("p", func(p *Proc) {
		for pass := 0; pass < 3; pass++ {
			p.BeginEntrySection()
			p.Write(v, 1)
			if p.AbortRequested() {
				aborted = append(aborted, pass)
				p.AbortPassage()
				continue
			}
			p.EnterCS()
			p.ExitCS()
			p.Write(v, 0)
			p.EndExitSection()
		}
	})
	res := m.Run(RunConfig{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0] != 1 {
		t.Fatalf("aborted passages = %v, want [1]", aborted)
	}
	if res.TotalAborts() != 1 || res.CSEntries != 2 || res.Passages() != 3 {
		t.Fatalf("aborts=%d csEntries=%d passages=%d, want 1/2/3",
			res.TotalAborts(), res.CSEntries, res.Passages())
	}
}

// TestAbortPointForFinishedPassageIsDead: a point whose event count is
// never reached within its passage does not leak into later passages.
func TestAbortPointForFinishedPassageIsDead(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.ScheduleAborts(AbortPoint{Proc: 0, Passage: 0, Event: 50})
	m.AddProc("p", func(p *Proc) {
		for pass := 0; pass < 2; pass++ {
			p.BeginEntrySection()
			p.Write(v, 1)
			if p.AbortRequested() {
				p.AbortPassage()
				continue
			}
			p.EnterCS()
			p.ExitCS()
			p.EndExitSection()
		}
	})
	res := m.Run(RunConfig{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.TotalAborts() != 0 || res.CSEntries != 2 {
		t.Fatalf("dead point fired: aborts=%d csEntries=%d", res.TotalAborts(), res.CSEntries)
	}
}

// TestAwaitAbortableReturnsOnAbort: a pending request makes
// AwaitAbortable return true even though the condition never holds.
func TestAwaitAbortableReturnsOnAbort(t *testing.T) {
	m := NewMachine(CC, 2)
	flag := m.NewVar("flag", HomeGlobal, 0)
	m.ScheduleAborts(AbortPoint{Proc: 0, Passage: 0, Event: 0})
	sawAbort := false
	m.AddProc("waiter", func(p *Proc) {
		p.BeginEntrySection()
		sawAbort = p.AwaitAbortable(func(read func(Var) Word) bool { return read(flag) != 0 }, flag)
		if !sawAbort {
			p.Fail("waiter saw flag=1 that nobody writes")
		}
		p.AbortPassage()
	})
	m.AddProc("bystander", func(p *Proc) { p.Read(flag) })
	res := m.Run(RunConfig{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawAbort || res.TotalAborts() != 1 {
		t.Fatalf("sawAbort=%v aborts=%d, want true/1", sawAbort, res.TotalAborts())
	}
}

// TestAwaitAbortableReturnsOnCondition: with no abort scheduled it is
// plain Await with a false return.
func TestAwaitAbortableReturnsOnCondition(t *testing.T) {
	m := NewMachine(CC, 2)
	flag := m.NewVar("flag", HomeGlobal, 0)
	m.AddProc("waiter", func(p *Proc) {
		p.BeginEntrySection()
		if p.AwaitAbortable(func(read func(Var) Word) bool { return read(flag) != 0 }, flag) {
			p.Fail("waiter aborted with no abort scheduled")
		}
		p.EnterCS()
		p.ExitCS()
		p.EndExitSection()
	})
	m.AddProc("setter", func(p *Proc) { p.Write(flag, 1) })
	if err := m.Run(RunConfig{}).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortResolveLatencyAccounting: steps between the fire point and
// the withdrawal land in MaxAbortResolveSteps.
func TestAbortResolveLatencyAccounting(t *testing.T) {
	const extraOps = 3
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.ScheduleAborts(AbortPoint{Proc: 0, Passage: 0, Event: 0})
	m.AddProc("p", func(p *Proc) {
		p.BeginEntrySection()
		for i := 0; i < extraOps; i++ {
			p.Write(v, Word(i))
		}
		p.AbortPassage()
	})
	res := m.Run(RunConfig{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.MaxAbortResolveSteps(); got != extraOps {
		t.Fatalf("MaxAbortResolveSteps = %d, want %d", got, extraOps)
	}
}

// TestAbortLapsesOnCSEntry: an acquisition that outruns the request
// completes the passage normally, but the steps still count against the
// wait-free-abort bound.
func TestAbortLapsesOnCSEntry(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.ScheduleAborts(AbortPoint{Proc: 0, Passage: 0, Event: 0})
	m.AddProc("p", func(p *Proc) {
		p.BeginEntrySection()
		p.Write(v, 1)
		p.EnterCS()
		if p.AbortRequested() {
			p.Fail("request survived CS entry")
		}
		p.ExitCS()
		p.EndExitSection()
	})
	res := m.Run(RunConfig{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.TotalAborts() != 0 || res.CSEntries != 1 {
		t.Fatalf("aborts=%d csEntries=%d, want 0/1", res.TotalAborts(), res.CSEntries)
	}
	if res.MaxAbortResolveSteps() == 0 {
		t.Fatal("lapsed request left no resolve-latency trace")
	}
}

// TestAbortPassageWithoutRequestIsViolation: withdrawal with no pending
// request is a harness bug, reported like any violation.
func TestAbortPassageWithoutRequestIsViolation(t *testing.T) {
	m := NewMachine(CC, 1)
	m.AddProc("p", func(p *Proc) {
		p.BeginEntrySection()
		p.AbortPassage()
	})
	if res := m.Run(RunConfig{}); res.Violation == nil {
		t.Fatal("spurious AbortPassage was not reported as a violation")
	}
}

// TestScheduleAbortsValidation: bad coordinates panic at schedule time,
// not mid-run.
func TestScheduleAbortsValidation(t *testing.T) {
	for _, pt := range []AbortPoint{
		{Proc: 2, Passage: 0, Event: 0},
		{Proc: -1, Passage: 0, Event: 0},
		{Proc: 0, Passage: -1, Event: 0},
		{Proc: 0, Passage: 0, Event: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ScheduleAborts(%v) did not panic", pt)
				}
			}()
			NewMachine(CC, 2).ScheduleAborts(pt)
		}()
	}
}

// TestDistributeSortsUnorderedSchedule: points given out of order are
// delivered in (passage, event) order per process.
func TestDistributeSortsUnorderedSchedule(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.ScheduleAborts(
		AbortPoint{Proc: 0, Passage: 1, Event: 0},
		AbortPoint{Proc: 0, Passage: 0, Event: 0},
	)
	var aborted []int
	m.AddProc("p", func(p *Proc) {
		for pass := 0; pass < 3; pass++ {
			p.BeginEntrySection()
			p.Write(v, 1)
			if p.AbortRequested() {
				aborted = append(aborted, pass)
				p.AbortPassage()
				continue
			}
			p.EnterCS()
			p.ExitCS()
			p.EndExitSection()
		}
	})
	if err := m.Run(RunConfig{}).Err(); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(aborted, want) {
		t.Fatalf("aborted passages = %v, want %v", aborted, want)
	}
}

// TestEnumerateAbortSchedulesCanonical: the family's size, leading
// entries, and byte layout are part of the conformance artifacts'
// identity — pin them.
func TestEnumerateAbortSchedulesCanonical(t *testing.T) {
	scheds := EnumerateAbortSchedules(2, 2, true)
	// nil + 2·3 singles + 2·3 retry doubles + 1·3 cross pairs.
	if len(scheds) != 16 {
		t.Fatalf("len = %d, want 16", len(scheds))
	}
	if scheds[0] != nil {
		t.Fatalf("schedule 0 = %v, want the empty schedule", scheds[0])
	}
	wantPrefix := [][]AbortPoint{
		nil,
		{{Proc: 0, Passage: 0, Event: 0}},
		{{Proc: 0, Passage: 0, Event: 1}},
		{{Proc: 0, Passage: 0, Event: 2}},
		{{Proc: 1, Passage: 0, Event: 0}},
	}
	if !reflect.DeepEqual(scheds[:len(wantPrefix)], wantPrefix) {
		t.Fatalf("prefix = %v, want %v", scheds[:len(wantPrefix)], wantPrefix)
	}
	wantLast := []AbortPoint{{Proc: 0, Passage: 0, Event: 2}, {Proc: 1, Passage: 0, Event: 2}}
	if !reflect.DeepEqual(scheds[len(scheds)-1], wantLast) {
		t.Fatalf("last = %v, want %v", scheds[len(scheds)-1], wantLast)
	}
	if again := EnumerateAbortSchedules(2, 2, true); !reflect.DeepEqual(scheds, again) {
		t.Fatal("enumeration is not deterministic")
	}
	if noRetry := EnumerateAbortSchedules(2, 2, false); len(noRetry) != 10 {
		t.Fatalf("no-retry len = %d, want 10", len(noRetry))
	}
}

// TestFormatAbortSchedule: the grep-able forms used in failure reports.
func TestFormatAbortSchedule(t *testing.T) {
	if got := FormatAbortSchedule(nil); got != "-" {
		t.Fatalf("empty schedule renders as %q", got)
	}
	sched := []AbortPoint{{Proc: 0, Passage: 0, Event: 2}, {Proc: 1, Passage: 1, Event: 0}}
	if got, want := FormatAbortSchedule(sched), "p0@0.2,p1@1.0"; got != want {
		t.Fatalf("FormatAbortSchedule = %q, want %q", got, want)
	}
}
