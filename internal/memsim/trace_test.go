package memsim

import (
	"reflect"
	"testing"
)

// noTrace asks traceMachine to skip EnableTrace entirely.
const noTrace = -999

// traceMachine runs nproc processes that each write their id into a
// shared variable `writes` times, under a deterministic scheduler.
func traceMachine(t *testing.T, capacity, nproc, writes int) *Machine {
	t.Helper()
	m := NewMachine(CC, nproc)
	if capacity != noTrace {
		m.EnableTrace(capacity)
	}
	v := m.NewVar("x", HomeGlobal, 0)
	for i := 0; i < nproc; i++ {
		i := i
		m.AddProc("p", func(p *Proc) {
			for k := 0; k < writes; k++ {
				p.Write(v, Word(i))
			}
		})
	}
	res := m.Run(RunConfig{Sched: NewRandom(7)})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTraceBeforeFill(t *testing.T) {
	// 2 procs × 3 writes = 6 events, under-filling a capacity-16 ring.
	m := traceMachine(t, 16, 2, 3)
	events := m.Trace()
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Step <= events[i-1].Step {
			t.Fatalf("events out of order: step %d after %d", events[i].Step, events[i-1].Step)
		}
	}
}

func TestTraceWraparoundOrdering(t *testing.T) {
	// 4 procs × 8 writes = 32 events through a capacity-5 ring: Trace
	// must return exactly the 5 most recent, oldest first.
	m := traceMachine(t, 5, 4, 8)
	events := m.Trace()
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5 (ring capacity)", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Step <= events[i-1].Step {
			t.Fatalf("wrapped trace out of order: step %d after %d", events[i].Step, events[i-1].Step)
		}
	}
	// The retained suffix must match the tail of an identical run
	// traced with a ring big enough to hold everything (same seed ⇒
	// bit-identical schedule).
	full := traceMachine(t, 1<<10, 4, 8).Trace()
	if !reflect.DeepEqual(events, full[len(full)-5:]) {
		t.Fatalf("wrapped ring retained\n%v\nwant tail of full trace\n%v", events, full[len(full)-5:])
	}
}

func TestTraceCapacityClamp(t *testing.T) {
	// Non-positive capacities clamp to 1: the ring keeps exactly the
	// most recent event instead of panicking on a zero-length buffer.
	for _, capacity := range []int{0, -3} {
		m := traceMachine(t, capacity, 2, 2)
		events := m.Trace()
		if len(events) != 1 {
			t.Fatalf("EnableTrace(%d): got %d events, want 1", capacity, len(events))
		}
	}
}

func TestTraceNilWithoutEnable(t *testing.T) {
	m := traceMachine(t, noTrace, 1, 1)
	if m.Trace() != nil {
		t.Fatal("Trace() without EnableTrace should be nil")
	}
}

func TestEnableTraceTwiceReplacesRing(t *testing.T) {
	m := NewMachine(CC, 1)
	m.EnableTrace(4)
	m.EnableTrace(2)
	v := m.NewVar("x", HomeGlobal, 0)
	m.AddProc("p", func(p *Proc) {
		for k := 0; k < 5; k++ {
			p.Write(v, Word(k))
		}
	})
	if err := m.Run(RunConfig{}).Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Trace()); got != 2 {
		t.Fatalf("got %d events, want 2 (second EnableTrace must replace, not stack)", got)
	}
}

// collectSink is a test EventSink retaining every event.
type collectSink struct{ events []TraceEvent }

func (c *collectSink) Record(ev TraceEvent) { c.events = append(c.events, ev) }

func TestAttachSinkSeesPhasedEvents(t *testing.T) {
	m := NewMachine(DSM, 2)
	sink := &collectSink{}
	m.AttachSink(sink)
	lock := m.NewVar("lock", HomeGlobal, 0)
	for i := 0; i < 2; i++ {
		m.AddProc("p", func(p *Proc) {
			p.BeginEntrySection()
			p.AwaitEq(lock, 0)
			p.RMW(lock, func(Word) Word { return 1 })
			p.EnterCS()
			p.Read(lock) // CS-phase access
			p.ExitCS()
			p.Write(lock, 0)
			p.EndExitSection()
		})
	}
	// Round-robin keeps both processes interleaving; the "lock" here is
	// not a real mutex under every schedule, so only check phases on a
	// schedule where it is.
	res := m.Run(RunConfig{Sched: NewRandom(3)})
	if res.Violation != nil {
		t.Skipf("schedule broke the toy lock: %v", res.Violation)
	}
	var sawEntry, sawCS, sawExit bool
	for _, ev := range sink.events {
		switch ev.Phase {
		case PhaseEntry:
			sawEntry = true
		case PhaseCS:
			sawCS = true
		case PhaseExit:
			sawExit = true
		}
	}
	if !sawEntry || !sawCS || !sawExit {
		t.Fatalf("missing phases: entry=%v cs=%v exit=%v", sawEntry, sawCS, sawExit)
	}
	// Per-phase RMR attribution must sum to the total.
	for _, p := range m.procs {
		var sum int64
		for _, v := range p.stats.PhaseRMRs {
			sum += v
		}
		if sum != p.stats.RMRs {
			t.Fatalf("p%d: phase RMRs %v sum to %d, total %d", p.id, p.stats.PhaseRMRs, sum, p.stats.RMRs)
		}
	}
}

// phaseCollectSink additionally retains phase transitions.
type phaseCollectSink struct {
	collectSink
	phases []PhaseEvent
}

func (c *phaseCollectSink) RecordPhase(ev PhaseEvent) { c.phases = append(c.phases, ev) }

// TestPhaseSinkSeesTransitions: a PhaseSink receives the four
// transitions of every entry, in order, with matching From/To chains
// per process.
func TestPhaseSinkSeesTransitions(t *testing.T) {
	m := NewMachine(DSM, 2)
	sink := &phaseCollectSink{}
	m.AttachSink(sink)
	lock := m.NewVar("lock", 0, 0)
	const entries = 3
	for i := 0; i < 2; i++ {
		m.AddProc("p", func(p *Proc) {
			for e := 0; e < entries; e++ {
				p.BeginEntrySection()
				p.AwaitEq(lock, 0)
				p.Write(lock, 1)
				p.EnterCS()
				p.ExitCS()
				p.Write(lock, 0)
				p.EndExitSection()
			}
		})
	}
	res := m.Run(RunConfig{Sched: NewRandom(5)})
	if res.Violation != nil {
		t.Skipf("schedule broke the toy lock: %v", res.Violation)
	}
	// Each process: entries × (ncs→entry→cs→exit→ncs).
	perProc := map[int][]PhaseEvent{}
	for _, ev := range sink.phases {
		perProc[ev.Proc] = append(perProc[ev.Proc], ev)
	}
	for proc, evs := range perProc {
		if len(evs) != 4*entries {
			t.Fatalf("p%d saw %d phase events, want %d", proc, len(evs), 4*entries)
		}
		wantTo := [4]Phase{PhaseEntry, PhaseCS, PhaseExit, PhaseNCS}
		prev := PhaseNCS
		for i, ev := range evs {
			if ev.From != prev || ev.To != wantTo[i%4] {
				t.Fatalf("p%d transition %d = %v→%v, want %v→%v", proc, i, ev.From, ev.To, prev, wantTo[i%4])
			}
			prev = ev.To
		}
	}
	// A plain EventSink must not be required to implement PhaseSink.
	m2 := NewMachine(DSM, 1)
	m2.AttachSink(&collectSink{})
	m2.AddProc("p", func(p *Proc) { p.BeginEntrySection(); p.EndExitSection() })
	if err := m2.Run(RunConfig{}).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestEventRemoteMatchesRMRAccounting: summing Remote-marked events
// per process must reproduce the engine's RMR counters exactly, on
// every model.
func TestEventRemoteMatchesRMRAccounting(t *testing.T) {
	for _, model := range []Model{CC, DSM, CCUpdate} {
		m := NewMachine(model, 3)
		sink := &collectSink{}
		m.AttachSink(sink)
		v := m.NewVar("x", HomeGlobal, 0)
		local := m.NewVar("loc", 0, 0)
		for i := 0; i < 3; i++ {
			m.AddProc("p", func(p *Proc) {
				for k := 0; k < 5; k++ {
					p.RMW(v, func(w Word) Word { return w + 1 })
					p.Read(v)
					p.Write(local, Word(k))
				}
			})
		}
		res := m.Run(RunConfig{Sched: NewRandom(2)})
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		remote := make([]int64, 3)
		for _, ev := range sink.events {
			if ev.Remote {
				remote[ev.Proc]++
			}
		}
		for i, ps := range res.Procs {
			if remote[i] != ps.RMRs {
				t.Fatalf("%v: p%d remote events %d != charged RMRs %d", model, i, remote[i], ps.RMRs)
			}
		}
	}
}

// TestMultiSinkFanout: every attached sink sees the identical event
// stream — fanout must not split, reorder, or duplicate.
func TestMultiSinkFanout(t *testing.T) {
	m := NewMachine(CC, 2)
	a, b := &collectSink{}, &phaseCollectSink{}
	m.AttachSink(a)
	m.AttachSink(b)
	m.EnableTrace(1 << 8)
	v := m.NewVar("x", HomeGlobal, 0)
	for i := 0; i < 2; i++ {
		m.AddProc("p", func(p *Proc) {
			p.BeginEntrySection()
			p.RMW(v, func(w Word) Word { return w + 1 })
			p.EndExitSection()
		})
	}
	if err := m.Run(RunConfig{Sched: NewRandom(9)}).Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.events, b.collectSink.events) {
		t.Fatal("two attached sinks saw different event streams")
	}
	if !reflect.DeepEqual(a.events, m.Trace()) {
		t.Fatal("sinks and trace ring diverged")
	}
	if len(b.phases) != 4 {
		t.Fatalf("phase sink saw %d transitions, want 4", len(b.phases))
	}
}

func TestSinkAndRingSeeSameEvents(t *testing.T) {
	m := NewMachine(CC, 2)
	sink := &collectSink{}
	m.AttachSink(sink)
	m.EnableTrace(1 << 10)
	v := m.NewVar("x", HomeGlobal, 0)
	for i := 0; i < 2; i++ {
		m.AddProc("p", func(p *Proc) {
			for k := 0; k < 4; k++ {
				p.RMW(v, func(w Word) Word { return w + 1 })
			}
		})
	}
	if err := m.Run(RunConfig{Sched: NewRandom(1)}).Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink.events, m.Trace()) {
		t.Fatal("attached sink and trace ring diverged")
	}
}
