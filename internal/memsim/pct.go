package memsim

import "math/rand"

// PCT implements Probabilistic Concurrency Testing (Burckhardt et al.,
// ASPLOS 2010): each process gets a random priority; the highest-
// priority runnable process always runs, except at d−1 randomly
// pre-chosen steps where the running process's priority is demoted
// below everyone's. For a bug of depth d (one needing d ordering
// constraints), a PCT run finds it with probability ≥ 1/(n·k^(d−1)),
// independent of how rare the interleaving is under uniform random
// scheduling — which makes PCT a strong complement to both the Random
// scheduler and the exhaustive Explorer.
type PCT struct {
	rng *rand.Rand
	// Depth is the bug depth d to target (number of priority change
	// points is Depth−1). Depth 1 means plain priority scheduling.
	depth int
	// steps estimates the run length k for placing change points.
	steps int64

	priorities   map[int]int64 // process id → priority (higher runs first)
	changePoints map[int64]bool
	nextPriority int64 // decreasing counter for demotions
}

// NewPCT returns a PCT scheduler targeting bugs of the given depth,
// assuming runs of roughly maxSteps scheduling points.
func NewPCT(seed int64, depth int, maxSteps int64) *PCT {
	if depth < 1 {
		depth = 1
	}
	if maxSteps < 1 {
		maxSteps = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &PCT{
		rng:          rng,
		depth:        depth,
		steps:        maxSteps,
		priorities:   make(map[int]int64),
		changePoints: make(map[int64]bool),
		nextPriority: 0,
	}
	for i := 0; i < depth-1; i++ {
		p.changePoints[rng.Int63n(maxSteps)] = true
	}
	return p
}

// Pick implements Scheduler.
func (p *PCT) Pick(step int64, runnable []int, last int) int {
	// Demote the previously running process at a change point.
	if p.changePoints[step] && last >= 0 {
		p.nextPriority--
		p.priorities[last] = p.nextPriority
	}
	best := runnable[0]
	bestPrio := p.priority(best)
	for _, id := range runnable[1:] {
		if prio := p.priority(id); prio > bestPrio {
			best, bestPrio = id, prio
		}
	}
	return best
}

// priority returns the process's priority, assigning an initial random
// one on first sight.
func (p *PCT) priority(id int) int64 {
	if prio, ok := p.priorities[id]; ok {
		return prio
	}
	// Initial priorities are large positive values so demotions
	// (negative, decreasing) always rank below them.
	prio := 1 + p.rng.Int63n(1<<30)
	p.priorities[id] = prio
	return prio
}

// Compile-time interface compliance check.
var _ Scheduler = (*PCT)(nil)
