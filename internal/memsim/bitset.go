package memsim

// bitset is a fixed-capacity set of process ids, used to track cached
// copies under the CC model.
type bitset struct {
	words []uint64
	count int
}

func newBitset(n int) bitset {
	return bitset{words: make([]uint64, (n+63)/64)}
}

func (b *bitset) has(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (b *bitset) add(i int) {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.count++
	}
}

// hasOnly reports whether the set is exactly {i}.
func (b *bitset) hasOnly(i int) bool {
	return b.count == 1 && b.has(i)
}

func (b *bitset) clear() {
	if b.count == 0 {
		return
	}
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}
