package memsim

import "math/rand"

// Adversary is a scheduler that starves one victim process: whenever
// any other process is runnable, the victim does not run. Among the
// non-victims it schedules randomly. The victim advances only when it
// is the sole runnable process — for a starvation-free algorithm it
// must still complete; for unfair algorithms this scheduler drives the
// bypass metric toward its true worst case far faster than uniform
// random scheduling.
type Adversary struct {
	victim int
	rng    *rand.Rand
}

// NewAdversary returns an adversary scheduler against the given victim
// process id.
func NewAdversary(seed int64, victim int) *Adversary {
	return &Adversary{victim: victim, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (a *Adversary) Pick(_ int64, runnable []int, _ int) int {
	others := runnable[:0:0]
	for _, id := range runnable {
		if id != a.victim {
			others = append(others, id)
		}
	}
	if len(others) == 0 {
		return a.victim
	}
	return others[a.rng.Intn(len(others))]
}

// Compile-time interface compliance check.
var _ Scheduler = (*Adversary)(nil)
