package memsim

import "testing"

// TestAdversaryStarvesVictimOfUnfairLock: under the adversary, a raw
// test-and-set lock lets the non-victims monopolize the critical
// section; the victim is the last to finish every time.
func TestAdversaryStarvesVictimOfUnfairLock(t *testing.T) {
	const n, entries = 3, 5
	m := NewMachine(CC, n)
	lock := m.NewVar("lock", HomeGlobal, 0)
	finishOrder := make([]int, 0, n)
	for i := 0; i < n; i++ {
		m.AddProc("p", func(p *Proc) {
			for e := 0; e < entries; e++ {
				for {
					if p.RMW(lock, func(Word) Word { return 1 }) == 0 {
						break
					}
					p.AwaitEq(lock, 0)
				}
				p.EnterCS()
				p.ExitCS()
				p.Write(lock, 0)
			}
			finishOrder = append(finishOrder, p.ID())
		})
	}
	res := m.Run(RunConfig{Sched: NewAdversary(1, 0)})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := finishOrder[len(finishOrder)-1]; got != 0 {
		t.Fatalf("victim was not last to finish: order %v", finishOrder)
	}
}

// TestAdversaryCannotBlockSoleRunnable: the victim still runs when
// alone, so single-process workloads complete.
func TestAdversaryCannotBlockSoleRunnable(t *testing.T) {
	m := NewMachine(CC, 1)
	v := m.NewVar("v", HomeGlobal, 0)
	m.AddProc("victim", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Write(v, Word(i))
		}
	})
	if err := m.Run(RunConfig{Sched: NewAdversary(2, 0)}).Err(); err != nil {
		t.Fatal(err)
	}
}

// TestAdversaryDeterministicPerSeed: replays identically.
func TestAdversaryDeterministicPerSeed(t *testing.T) {
	run := func() int64 {
		m := NewMachine(CC, 3)
		v := m.NewVar("v", HomeGlobal, 0)
		for i := 0; i < 3; i++ {
			m.AddProc("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.RMW(v, func(w Word) Word { return w + 1 })
				}
			})
		}
		return m.Run(RunConfig{Sched: NewAdversary(9, 1)}).Steps
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("adversary not deterministic: %d vs %d", a, b)
	}
}
