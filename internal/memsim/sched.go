package memsim

import "math/rand"

// Scheduler decides which runnable process performs the next operation.
// Implementations must be deterministic functions of their own state
// and the arguments, so runs are reproducible.
type Scheduler interface {
	// Pick returns an element of runnable (which is non-empty and
	// sorted ascending). last is the id of the previously scheduled
	// process, or -1 at the first step.
	Pick(step int64, runnable []int, last int) int
}

// Random schedules uniformly at random from a seeded source. Different
// seeds give independent interleavings; the same seed replays the same
// run.
type Random struct{ rng *rand.Rand }

// NewRandom returns a Random scheduler with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (r *Random) Pick(_ int64, runnable []int, _ int) int {
	return runnable[r.rng.Intn(len(runnable))]
}

// RoundRobin rotates through the runnable processes, resuming from the
// successor of the previously scheduled id. It maximizes interleaving
// churn while staying deterministic.
type RoundRobin struct{}

// Pick implements Scheduler.
func (RoundRobin) Pick(_ int64, runnable []int, last int) int {
	for _, id := range runnable {
		if id > last {
			return id
		}
	}
	return runnable[0]
}

// Sticky keeps running the same process for a fixed quantum of steps
// before rotating, emulating coarse-grained preemption. Quantum 1
// behaves like RoundRobin.
type Sticky struct {
	// Quantum is the number of consecutive steps granted to one
	// process while it stays runnable.
	Quantum int64

	sliceLeft int64
}

// Pick implements Scheduler.
func (s *Sticky) Pick(_ int64, runnable []int, last int) int {
	if s.sliceLeft > 0 && last >= 0 {
		for _, id := range runnable {
			if id == last {
				s.sliceLeft--
				return id
			}
		}
	}
	s.sliceLeft = s.Quantum - 1
	return RoundRobin{}.Pick(0, runnable, last)
}

// Compile-time interface compliance checks.
var (
	_ Scheduler = (*Random)(nil)
	_ Scheduler = RoundRobin{}
	_ Scheduler = (*Sticky)(nil)
)
