package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fetchphi/internal/harness"
	"fetchphi/internal/obs"
	"fetchphi/internal/telemetry"
)

// stepClock is the telemetry clock for determinism tests: it advances a
// fixed amount per read, so every duration in the capacity artifact is
// a pure function of the campaign's clock-read count — which the
// campaign engine keeps independent of worker count.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newStepClock(step time.Duration) *stepClock {
	return &stepClock{now: time.Unix(0, 0), step: step}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// TestFleetCapacityByteIdentical is the capacity-artifact half of the
// determinism contract: the same campaign under the same (step)
// telemetry clock writes byte-identical fetchphi.capacity/v1 artifacts
// at every worker count. Per-worker metrics stay in the registry — if
// they ever leaked into the artifact, this test would catch it, because
// worker IDs and lease assignment differ across the runs.
func TestFleetCapacityByteIdentical(t *testing.T) {
	dir := t.TempDir()
	run := func(workers int) []byte {
		path := filepath.Join(dir, fmt.Sprintf("cap-w%d.json", workers))
		coord := NewCoordinator(testConfig(), CoordinatorOptions{
			LeaseSize:    5,
			CapacityPath: path,
			CreatedBy:    "determinism-test",
			Metrics:      telemetry.New(newStepClock(time.Millisecond).Now),
		})
		if _, err := CheckWith(coord, newTASLock, CheckOptions{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	ref := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); string(got) != string(ref) {
			t.Errorf("capacity artifact diverged at workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s", workers, ref, workers, got)
		}
	}

	art, err := obs.ReadCapacityArtifact(filepath.Join(dir, "cap-w1.json"))
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case !art.Complete:
		t.Error("final capacity artifact not marked Complete")
	case art.Schedules <= 0 || art.Waves <= 0:
		t.Errorf("empty campaign recorded: %d schedules, %d waves", art.Schedules, art.Waves)
	case art.Leases <= 0:
		t.Error("no leases recorded — the fleet path did not run")
	case art.SchedulesPerSec <= 0:
		t.Error("step clock produced zero throughput")
	case art.WaveUS.Count != art.Waves:
		t.Errorf("wave histogram has %d samples for %d waves", art.WaveUS.Count, art.Waves)
	}
}

// TestFleetCapacityByteIdenticalAfterWorkerLoss extends the contract to
// the failure path: a zombie claims the root lease and dies, the lease
// clock is advanced past its deadline exactly once, and healthy workers
// drain the campaign. The re-lease is then deterministic (exactly one
// expired lease ever exists), so the capacity artifact — re-lease
// counters included — stays byte-identical at every healthy-worker
// count.
func TestFleetCapacityByteIdenticalAfterWorkerLoss(t *testing.T) {
	ref, refErr := refReports(t, newTASLock)
	dir := t.TempDir()

	run := func(workers int) []byte {
		path := filepath.Join(dir, fmt.Sprintf("loss-w%d.json", workers))
		leaseClock := &fakeClock{}
		coord := NewCoordinator(testConfig(), CoordinatorOptions{
			LeaseSize:    3,
			LeaseTimeout: time.Second,
			RetryMS:      1,
			Now:          leaseClock.now,
			CapacityPath: path,
			CreatedBy:    "determinism-test",
			Metrics:      telemetry.New(newStepClock(time.Millisecond).Now),
		})
		srv := httptest.NewServer(coord.Handler())
		defer srv.Close()
		go coord.Run()

		// The zombie claims the root wave's only lease and dies. Wait
		// polls don't touch the lease counters, so retrying until the
		// root wave is published cannot perturb the artifact.
		var lr LeaseResponse
		for i := 0; i < 5000 && lr.Status != StatusLease; i++ {
			postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "zombie"}, &lr)
			if lr.Status == StatusWait {
				time.Sleep(time.Millisecond)
			}
		}
		if lr.Status != StatusLease {
			t.Fatalf("zombie claim: %+v", lr)
		}

		// One clock step past the deadline: the zombie's lease is now
		// expired; every lease granted after this instant never expires
		// (the clock stays frozen), so exactly one re-lease happens
		// regardless of how many healthy workers race for it.
		leaseClock.advance(2 * time.Second)

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			w := &Worker{
				ID:          fmt.Sprintf("h%d", i),
				Coordinator: srv.URL,
				Resolve:     func(string) (harness.Builder, error) { return newTASLock, nil },
				Poll:        time.Millisecond,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run(ctx)
			}()
		}
		got, err := coord.Wait()
		wg.Wait()
		assertBitIdentical(t, fmt.Sprintf("after loss, workers=%d", workers), got, ref, err, refErr)

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	base := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); string(got) != string(base) {
			t.Errorf("capacity artifact diverged at workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s", workers, base, workers, got)
		}
	}

	art, err := obs.ReadCapacityArtifact(filepath.Join(dir, "loss-w1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if art.ReLeases != 1 {
		t.Errorf("re-leases: %d, want exactly 1 (the zombie's range)", art.ReLeases)
	}
	if art.StaleReports != 0 {
		t.Errorf("stale reports: %d, want 0 (the zombie never reports)", art.StaleReports)
	}
}

// waitingCoordinator is a stub that answers the config probe, then
// returns StatusWait with a RetryMS hint a fixed number of times before
// StatusDone — the smallest server that exercises the worker's idle
// backoff path.
func waitingCoordinator(t *testing.T, waits int, retryMS int) *httptest.Server {
	t.Helper()
	served := 0
	mux := http.NewServeMux()
	mux.HandleFunc(PathConfig, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(testConfig())
	})
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		resp := LeaseResponse{Status: StatusDone}
		if served < waits {
			served++
			resp = LeaseResponse{Status: StatusWait, RetryMS: retryMS}
		}
		json.NewEncoder(w).Encode(resp)
	})
	return httptest.NewServer(mux)
}

// backoffDelays runs a worker against a waiting coordinator with an
// instant recording sleeper and returns the observed backoff delays and
// the worker's metrics snapshot.
func backoffDelays(t *testing.T, id string, waits, retryMS int, maxBackoff time.Duration) ([]time.Duration, telemetry.Snapshot) {
	t.Helper()
	srv := waitingCoordinator(t, waits, retryMS)
	defer srv.Close()
	var delays []time.Duration
	metrics := telemetry.New(nil)
	w := &Worker{
		ID:          id,
		Coordinator: srv.URL,
		Resolve:     func(string) (harness.Builder, error) { return newTASLock, nil },
		Poll:        time.Millisecond, // ≠ RetryMS so the test proves the hint wins
		MaxBackoff:  maxBackoff,
		Metrics:     metrics,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}
	return delays, metrics.Snapshot()
}

// TestWorkerBackoffHonorsRetryHint pins the idle-backoff contract: the
// coordinator's RetryMS hint (not the worker's Poll) is the base delay,
// consecutive waits double it up to MaxBackoff, and every delay is
// jittered within [d/2, d].
func TestWorkerBackoffHonorsRetryHint(t *testing.T) {
	const retryMS = 40
	maxBackoff := 100 * time.Millisecond
	delays, snap := backoffDelays(t, "backoff-worker", 4, retryMS, maxBackoff)
	if len(delays) != 4 {
		t.Fatalf("recorded %d backoffs, want 4", len(delays))
	}
	base := retryMS * time.Millisecond
	for i, got := range delays {
		want := base << i
		if want > maxBackoff {
			want = maxBackoff
		}
		if got < want/2 || got > want {
			t.Errorf("wait %d: slept %v, want jittered within [%v, %v]", i, got, want/2, want)
		}
	}
	// The first delay derives from the 40ms hint, not the 1ms Poll.
	if delays[0] < base/2 {
		t.Errorf("first delay %v ignores the RetryMS hint (Poll is 1ms)", delays[0])
	}
	if got := snap.Counter(MetricWorkerBackoffs); got != 4 {
		t.Errorf("worker.backoffs counter: %d, want 4", got)
	}
	if got := snap.Counter(MetricWorkerLeases); got != 0 {
		t.Errorf("worker.leases counter: %d, want 0 (no lease was granted)", got)
	}
}

// TestWorkerBackoffDeterministicPerID: a worker's jitter seed derives
// from its ID, so the same ID replays the same backoff sequence while
// distinct IDs de-synchronize.
func TestWorkerBackoffDeterministicPerID(t *testing.T) {
	a1, _ := backoffDelays(t, "worker-a", 5, 16, 64*time.Millisecond)
	a2, _ := backoffDelays(t, "worker-a", 5, 16, 64*time.Millisecond)
	b, _ := backoffDelays(t, "worker-b", 5, 16, 64*time.Millisecond)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Errorf("same ID replayed different delays:\n%v\n%v", a1, a2)
	}
	if fmt.Sprint(a1) == fmt.Sprint(b) {
		t.Errorf("distinct IDs produced identical jitter: %v", a1)
	}
}
