package fleet

import (
	"errors"
	"fmt"
	"os"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/obs"
	"fetchphi/internal/telemetry"
)

// This file is the campaign engine: the wave loop of memsim's
// Explorer.Run, lifted out of the explorer so that (a) wave execution
// can be delegated to any backend — in-process shards or a worker
// fleet — and (b) every completed wave can be persisted as a resumable
// checkpoint. The loop replicates Explorer.Run's semantics exactly
// (cap check before each wave, canonical-prefix truncation when
// MaxRuns lands inside a wave, first-failing-index reporting, stop
// after a failing wave), which the equivalence tests pin against
// harness.CheckSharded.

// A WaveExecutor runs one full wave of schedules and returns the
// per-schedule outcomes indexed like the wave. Implementations decide
// where the schedules actually execute: LocalExecutor shards them
// across in-process goroutines, Coordinator leases them to fleet
// workers over HTTP. Executors must run every index exactly once per
// call and must not reorder outcomes.
type WaveExecutor interface {
	ExecWave(model memsim.Model, depth int, wave [][]memsim.Preemption) []memsim.ScheduleOutcome
}

// LocalExecutor executes waves in-process through the sharded
// explorer — the single-machine backend of the campaign engine, used
// by cmd/explore -checkpoint. It builds one explorer per model through
// harness.CheckExplorer, exactly like every other check path.
type LocalExecutor struct {
	// Build is the algorithm under test.
	Build harness.Builder
	// Config is the campaign configuration.
	Config Config
	// Shards is the local wave-shard width (<= 1: sequential).
	Shards int

	explorers map[memsim.Model]*memsim.Explorer
}

// ExecWave implements WaveExecutor.
func (x *LocalExecutor) ExecWave(model memsim.Model, depth int, wave [][]memsim.Preemption) []memsim.ScheduleOutcome {
	if x.explorers == nil {
		x.explorers = make(map[memsim.Model]*memsim.Explorer)
	}
	e, ok := x.explorers[model]
	if !ok {
		e = harness.CheckExplorer(x.Build, model, x.Config.N, x.Config.Entries, x.Config.withDefaults().exploreOptions(x.Shards))
		x.explorers[model] = e
	}
	return e.RunScheduleRange(wave)
}

// modelState is one memory model's in-flight campaign state.
type modelState struct {
	model memsim.Model
	done  bool
	// frontier is the wave pending at nextDepth (only while !done).
	frontier  [][]memsim.Preemption
	nextDepth int
	runs      int
	depthRuns []int
	// result is the final exploration result (only once done).
	result memsim.ExploreResult
}

// finish seals one model's exploration.
func (st *modelState) finish(res memsim.ExploreResult) {
	st.done = true
	st.frontier = nil
	st.result = res
}

// Campaign drives a full multi-model exploration through a
// WaveExecutor, checkpointing after every completed wave.
type Campaign struct {
	// Config is the campaign configuration; zero fields get the
	// documented defaults.
	Config Config
	// Exec runs each wave.
	Exec WaveExecutor
	// CheckpointPath, when non-empty, is the resumable
	// fetchphi.explore/v1 artifact: loaded (and validated against
	// Config) at start if it exists, rewritten atomically after every
	// completed wave, and left behind as the final artifact with
	// Checkpoint.Complete=true. Empty disables checkpointing.
	CheckpointPath string
	// CreatedBy and Commit stamp the artifact header. The artifact
	// carries no wall-clock fields, so for a fixed configuration and
	// commit it is byte-reproducible.
	CreatedBy string
	Commit    string
	// CapacityPath, when non-empty, is the fetchphi.capacity/v1
	// artifact: rewritten atomically after every completed wave
	// (Complete=false) and finalized when the campaign ends
	// (Complete=true). Empty disables it.
	CapacityPath string
	// Metrics receives the campaign's telemetry (wave counts/timings,
	// schedule counts, and — when Exec is a Coordinator sharing the
	// registry — the lease counters). Nil selects a fresh wall-clock
	// registry. For byte-identical capacity artifacts, inject a fake
	// clock: the campaign reads the registry clock only at
	// deterministic points (two reads per wave, one per capacity
	// write), so a step clock yields identical artifacts at any worker
	// count.
	Metrics *telemetry.Registry
	// AfterWave, if non-nil, runs after each wave (and each model
	// completion) has been checkpointed; returning a non-nil error
	// aborts the campaign immediately with that error — the
	// SIGKILL-equivalent hook the resume tests use.
	AfterWave func(model memsim.Model, depth int) error
	// Progress, if non-nil, observes each wave start.
	Progress func(model memsim.Model, p memsim.ExploreProgress)
}

// Run executes (or resumes) the campaign. The returned reports are in
// Config.Models order with Runs, Exhausted, DepthRuns, and
// FailingSchedule bit-identical to harness.CheckSharded over the same
// configuration; the error is the first failing model's, formatted by
// harness.CheckFailure. Like CheckSharded, reports (and the final
// artifact) are returned even when the check itself fails, so callers
// can persist capacity records for failed checks too.
func (c *Campaign) Run() ([]harness.ModelReport, *obs.ExploreArtifact, error) {
	cfg := c.Config.withDefaults()
	models, err := cfg.parseModels()
	if err != nil {
		return nil, nil, err
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.New(nil)
	}

	states := make([]*modelState, len(models))
	for i, m := range models {
		states[i] = &modelState{model: m, frontier: memsim.RootWave()}
	}
	if c.CheckpointPath != "" {
		if _, statErr := os.Stat(c.CheckpointPath); statErr == nil {
			if err := c.restore(cfg, states); err != nil {
				return nil, nil, err
			}
		}
	}

	for _, st := range states {
		if st.done {
			continue
		}
		if err := c.runModel(cfg, st, states); err != nil {
			return nil, nil, err
		}
	}

	art := c.artifact(cfg, states, true)
	if c.CheckpointPath != "" {
		if err := art.WriteFile(c.CheckpointPath); err != nil {
			return nil, nil, err
		}
	}
	if err := c.writeCapacity(cfg, states, true); err != nil {
		return nil, nil, err
	}
	reports := make([]harness.ModelReport, len(states))
	var checkErr error
	for i, st := range states {
		reports[i] = harness.ModelReport{Model: st.model, Result: st.result}
		if checkErr == nil && st.result.Err != nil {
			checkErr = harness.CheckFailure(st.model, st.result)
		}
	}
	return reports, art, checkErr
}

// runModel drives one model's wave loop to completion, checkpointing
// after every wave (and once more when the model finishes).
func (c *Campaign) runModel(cfg Config, st *modelState, all []*modelState) error {
	for !st.done {
		if len(st.frontier) == 0 {
			st.finish(memsim.ExploreResult{Runs: st.runs, Exhausted: true, DepthRuns: st.depthRuns})
			break
		}
		if st.runs >= cfg.MaxRuns {
			st.finish(memsim.ExploreResult{Runs: st.runs, DepthRuns: st.depthRuns})
			break
		}
		wave := st.frontier
		truncated := false
		if remaining := cfg.MaxRuns - st.runs; len(wave) > remaining {
			// Canonical-prefix truncation, exactly like Explorer.Run:
			// the set of schedules executed under the cap stays
			// deterministic.
			wave = wave[:remaining]
			truncated = true
		}
		if c.Progress != nil {
			c.Progress(st.model, memsim.ExploreProgress{Depth: st.nextDepth, Frontier: len(wave), Runs: st.runs})
		}
		stop := c.Metrics.Time(MetricWaveUS)
		outs := c.Exec.ExecWave(st.model, st.nextDepth, wave)
		stop()
		c.Metrics.Counter(MetricWaves).Inc()
		c.Metrics.Counter(MetricSchedules).Add(int64(len(wave)))
		if len(outs) != len(wave) {
			return fmt.Errorf("fleet: executor returned %d outcomes for a %d-schedule wave", len(outs), len(wave))
		}
		st.runs += len(wave)
		st.depthRuns = append(st.depthRuns, len(wave))
		failed := false
		for i := range outs {
			if outs[i].Err != nil {
				st.finish(memsim.ExploreResult{
					Runs:            st.runs,
					Err:             outs[i].Err,
					FailingSchedule: wave[i],
					DepthRuns:       st.depthRuns,
				})
				failed = true
				break
			}
		}
		if failed {
			break
		}
		if truncated {
			st.finish(memsim.ExploreResult{Runs: st.runs, DepthRuns: st.depthRuns})
			break
		}
		var next [][]memsim.Preemption
		for i := range outs {
			next = append(next, outs[i].Children...)
		}
		st.frontier = next
		st.nextDepth++
		if err := c.afterWave(cfg, st, all); err != nil {
			return err
		}
	}
	return c.afterWave(cfg, st, all)
}

// afterWave persists the checkpoint and capacity artifacts and fires
// the AfterWave hook.
func (c *Campaign) afterWave(cfg Config, st *modelState, all []*modelState) error {
	if c.CheckpointPath != "" {
		if err := c.artifact(cfg, all, false).WriteFile(c.CheckpointPath); err != nil {
			return err
		}
	}
	if err := c.writeCapacity(cfg, all, false); err != nil {
		return err
	}
	if c.AfterWave != nil {
		return c.AfterWave(st.model, st.nextDepth)
	}
	return nil
}

// writeCapacity rewrites the capacity artifact from the current
// telemetry snapshot (a no-op without a CapacityPath). Exactly one
// registry-clock read per call, at a deterministic point in the wave
// loop — the invariant that keeps fake-clock artifacts byte-identical.
func (c *Campaign) writeCapacity(cfg Config, states []*modelState, complete bool) error {
	if c.CapacityPath == "" {
		return nil
	}
	return c.capacity(cfg, states, complete).WriteFile(c.CapacityPath)
}

// capacity builds the fetchphi.capacity/v1 artifact: campaign-level
// aggregates only. Per-worker metrics stay out deliberately — which
// worker ran which lease differs run to run and with worker count, so
// admitting them would break the artifact's byte-identity contract.
func (c *Campaign) capacity(cfg Config, states []*modelState, complete bool) *obs.CapacityArtifact {
	snap := c.Metrics.Snapshot()
	art := &obs.CapacityArtifact{
		Schema:    obs.CapacitySchema,
		Algorithm: cfg.Algorithm,
		CreatedBy: c.CreatedBy,
		Commit:    c.Commit,
		N:         cfg.N, Entries: cfg.Entries, Preemptions: cfg.Preemptions,
		MaxRuns:         cfg.MaxRuns,
		Complete:        complete,
		ElapsedMS:       float64(snap.ElapsedUS) / 1000,
		Waves:           snap.Counter(MetricWaves),
		Schedules:       snap.Counter(MetricSchedules),
		SchedulesPerSec: snap.PerSec(MetricSchedules),
		Leases:          snap.Counter(MetricLeases),
		ReLeases:        snap.Counter(MetricReLeases),
		StaleReports:    snap.Counter(MetricStaleReports),
		WaveUS:          snap.Histogram(MetricWaveUS),
	}
	if art.Leases > 0 {
		art.ReLeaseRate = float64(art.ReLeases) / float64(art.Leases)
	}
	for _, st := range states {
		art.Models = append(art.Models, obs.CapacityModel{
			Model:     st.model.String(),
			Done:      st.done,
			Waves:     len(st.depthRuns),
			Schedules: st.runs,
		})
	}
	return art
}

// artifact serializes the campaign state as a fetchphi.explore/v1
// artifact with the resumable-checkpoint extension. Done models appear
// in Models; in-progress models live only in the checkpoint. The
// output contains no wall-clock fields, so identical campaign states
// serialize to identical bytes.
func (c *Campaign) artifact(cfg Config, states []*modelState, complete bool) *obs.ExploreArtifact {
	art := &obs.ExploreArtifact{
		Schema:    obs.ExploreSchema,
		Algorithm: cfg.Algorithm,
		CreatedBy: c.CreatedBy,
		Commit:    c.Commit,
		N:         cfg.N, Entries: cfg.Entries, Preemptions: cfg.Preemptions,
		MaxRuns:    cfg.MaxRuns,
		Checkpoint: &obs.ExploreCheckpoint{Complete: complete},
	}
	for _, st := range states {
		ck := obs.ExploreModelCheckpoint{
			Model:     st.model.String(),
			Done:      st.done,
			NextDepth: st.nextDepth,
			Runs:      st.runs,
			DepthRuns: append([]int(nil), st.depthRuns...),
		}
		if !st.done {
			ck.Frontier = make([][]obs.ExplorePreemption, len(st.frontier))
			for i, s := range st.frontier {
				ck.Frontier[i] = toWire(s)
			}
		} else {
			em := obs.ExploreModel{
				Model:     st.model.String(),
				Runs:      st.result.Runs,
				Exhausted: st.result.Exhausted,
				DepthRuns: append([]int(nil), st.result.DepthRuns...),
			}
			if st.result.Err != nil {
				em.Failure = st.result.Err.Error()
				em.FailingSchedule = toWire(st.result.FailingSchedule)
			}
			art.Models = append(art.Models, em)
		}
		art.Checkpoint.Models = append(art.Checkpoint.Models, ck)
	}
	return art
}

// restore loads the checkpoint artifact and rehydrates states from it.
// The checkpoint's configuration must match cfg — resuming a campaign
// under a different configuration would silently corrupt the merge.
func (c *Campaign) restore(cfg Config, states []*modelState) error {
	art, err := obs.ReadExploreArtifact(c.CheckpointPath)
	if err != nil {
		return err
	}
	if art.Checkpoint == nil {
		return fmt.Errorf("fleet: %s is not a checkpoint artifact (no checkpoint extension)", c.CheckpointPath)
	}
	if art.Algorithm != cfg.Algorithm || art.N != cfg.N || art.Entries != cfg.Entries ||
		art.Preemptions != cfg.Preemptions || art.MaxRuns != cfg.MaxRuns {
		return fmt.Errorf("fleet: checkpoint %s was written for alg=%s n=%d entries=%d preemptions=%d maxruns=%d; refusing to resume with a different configuration",
			c.CheckpointPath, art.Algorithm, art.N, art.Entries, art.Preemptions, art.MaxRuns)
	}
	if len(art.Checkpoint.Models) != len(states) {
		return fmt.Errorf("fleet: checkpoint %s covers %d models, campaign configures %d", c.CheckpointPath, len(art.Checkpoint.Models), len(states))
	}
	finals := make(map[string]obs.ExploreModel, len(art.Models))
	for _, em := range art.Models {
		finals[em.Model] = em
	}
	for i, ck := range art.Checkpoint.Models {
		st := states[i]
		if ck.Model != st.model.String() {
			return fmt.Errorf("fleet: checkpoint model %d is %q, campaign configures %q", i, ck.Model, st.model)
		}
		st.nextDepth = ck.NextDepth
		st.runs = ck.Runs
		st.depthRuns = append([]int(nil), ck.DepthRuns...)
		if !ck.Done {
			st.frontier = make([][]memsim.Preemption, len(ck.Frontier))
			for j, s := range ck.Frontier {
				st.frontier[j] = fromWire(s)
			}
			continue
		}
		em, ok := finals[ck.Model]
		if !ok {
			return fmt.Errorf("fleet: checkpoint marks model %s done but the artifact has no final record for it", ck.Model)
		}
		res := memsim.ExploreResult{
			Runs:      em.Runs,
			Exhausted: em.Exhausted,
			DepthRuns: append([]int(nil), em.DepthRuns...),
		}
		if em.Failure != "" {
			res.Err = errors.New(em.Failure)
			res.FailingSchedule = fromWire(em.FailingSchedule)
		}
		st.finish(res)
	}
	return nil
}
