package fleet

import (
	"fmt"
	"sync"
	"time"

	"fetchphi/internal/memsim"
)

// This file is the lease table: the coordinator's bookkeeping for one
// active wave. The wave's index space is cut into a fixed grid of
// contiguous ranges; each range moves pending → leased → done, with
// leased ranges falling back to claimable when their deadline passes.
// The grid never changes after construction, so a range's identity is
// its index — whichever lease (first grant, or a re-lease after a
// worker died) eventually delivers the outcomes, they land in the same
// slots. That is the whole fault-tolerance story: worker loss delays a
// wave, it cannot change the result.

// Lease states.
const (
	rangePending = iota
	rangeLeased
	rangeDone
)

// waveRange is one grid cell of the active wave.
type waveRange struct {
	lo, hi   int
	state    int
	leaseID  int64
	worker   string
	deadline time.Time
	outcomes []memsim.ScheduleOutcome
}

// leaseTable tracks the active wave's ranges. All methods are
// goroutine-safe; completion is signaled by closing done.
type leaseTable struct {
	model   memsim.Model
	depth   int
	wave    [][]memsim.Preemption
	timeout time.Duration
	// now is injected by the coordinator (wall clock in production,
	// a fake in the fault-injection tests).
	now func() time.Time

	mu        sync.Mutex
	ranges    []*waveRange
	remaining int
	done      chan struct{}
}

// newLeaseTable cuts wave into ranges of at most size indices.
func newLeaseTable(model memsim.Model, depth int, wave [][]memsim.Preemption, size int, timeout time.Duration, now func() time.Time) *leaseTable {
	if size < 1 {
		size = 1
	}
	t := &leaseTable{
		model:   model,
		depth:   depth,
		wave:    wave,
		timeout: timeout,
		now:     now,
		done:    make(chan struct{}),
	}
	for lo := 0; lo < len(wave); lo += size {
		hi := lo + size
		if hi > len(wave) {
			hi = len(wave)
		}
		t.ranges = append(t.ranges, &waveRange{lo: lo, hi: hi, state: rangePending})
	}
	t.remaining = len(t.ranges)
	return t
}

// claim grants the first pending range — or, failing that, re-leases
// the first expired one — to worker, under the given lease ID. The
// returned event kind distinguishes a first grant from a re-lease;
// ok is false when nothing is claimable right now (every range is done
// or leased with a live deadline).
func (t *leaseTable) claim(worker string, leaseID int64) (lease *Lease, kind string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var pick *waveRange
	for _, r := range t.ranges {
		if r.state == rangePending {
			pick, kind = r, "lease"
			break
		}
	}
	if pick == nil {
		for _, r := range t.ranges {
			if r.state == rangeLeased && !r.deadline.After(now) {
				pick, kind = r, "re-lease"
				break
			}
		}
	}
	if pick == nil {
		return nil, "", false
	}
	pick.state = rangeLeased
	pick.leaseID = leaseID
	pick.worker = worker
	pick.deadline = now.Add(t.timeout)
	return &Lease{
		ID:         leaseID,
		Model:      t.model.String(),
		Depth:      t.depth,
		Lo:         pick.lo,
		Hi:         pick.hi,
		Schedules:  schedulesToWire(t.wave[pick.lo:pick.hi]),
		DeadlineMS: t.timeout.Milliseconds(),
	}, kind, true
}

// report delivers one range's outcomes. Reports are accepted for any
// not-yet-done range with a matching geometry — including reports from
// an expired lease that was since re-granted, because wave execution
// is deterministic and every report for a range carries identical
// outcomes. Duplicate reports for a done range are ignored (accepted =
// false), which is what a worker sees after its response to an earlier
// identical report was lost in flight.
func (t *leaseTable) report(req *ReportRequest, outcomes []memsim.ScheduleOutcome) (accepted bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.ranges {
		if r.lo != req.Lo {
			continue
		}
		if r.hi != req.Hi || len(outcomes) != r.hi-r.lo {
			return false, fmt.Errorf("fleet: report for range [%d,%d) with %d outcomes does not match the wave grid range [%d,%d)", req.Lo, req.Hi, len(outcomes), r.lo, r.hi)
		}
		if r.state == rangeDone {
			return false, nil
		}
		r.state = rangeDone
		r.outcomes = outcomes
		t.remaining--
		if t.remaining == 0 {
			close(t.done)
		}
		return true, nil
	}
	return false, fmt.Errorf("fleet: report for range [%d,%d) does not start on the wave grid", req.Lo, req.Hi)
}

// collect concatenates the per-range outcomes in grid order; it must
// only be called after done is closed.
func (t *leaseTable) collect() []memsim.ScheduleOutcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]memsim.ScheduleOutcome, 0, len(t.wave))
	for _, r := range t.ranges {
		out = append(out, r.outcomes...)
	}
	return out
}

// counts reports the range-state totals for status snapshots.
func (t *leaseTable) counts() (pending, leased, doneN int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.ranges {
		switch r.state {
		case rangePending:
			pending++
		case rangeLeased:
			leased++
		case rangeDone:
			doneN++
		}
	}
	return
}
