// Package fleet distributes the wave-synchronous model checker across
// machines: a coordinator decomposes each schedule wave into contiguous
// index-range leases with deadlines, workers claim leases over plain
// HTTP+JSON and execute them through the existing sharded explorer, and
// the coordinator merges the per-range outcomes by canonical index —
// the same merge Explorer.Run performs — so Runs, Exhausted, DepthRuns,
// and the reported FailingSchedule are bit-identical to a single-machine
// harness.CheckSharded run at any worker count, join/leave order, or
// lease size.
//
// The determinism argument has three independent legs:
//
//  1. Wave execution is a pure function of the machine: every schedule
//     index yields the same ScheduleOutcome whichever worker runs it,
//     because harness.CheckExplorer is the single definition of the
//     workload and memsim.Explorer.Build is required to be
//     deterministic.
//  2. Leases partition a wave's index space into a fixed grid, so each
//     index's outcome lands at its own slot regardless of which lease
//     (or which re-lease, after a worker is lost) delivered it; stale
//     duplicate reports are ignored, which is sound because they are
//     byte-identical to the accepted one.
//  3. The merge is positional: first failing index in wave order is the
//     canonical failure, and the next wave is the concatenation of
//     Children in parent order — no timestamps, worker ids, or arrival
//     order ever reach the result.
//
// Completed waves persist as resumable checkpoints (the
// fetchphi.explore/v1 Checkpoint extension in internal/obs), so a
// killed coordinator resumes mid-campaign without re-running finished
// waves, and an interrupted campaign's final artifact is byte-identical
// to an uninterrupted one.
package fleet

import (
	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/obs"
)

// Wire paths of the coordinator's HTTP+JSON API. All bodies are JSON;
// all responses are 200 unless the request itself is malformed.
const (
	// PathConfig (GET) returns the campaign Config so workers build
	// bit-identical explorers.
	PathConfig = "/v1/config"
	// PathLease (POST, LeaseRequest → LeaseResponse) claims the next
	// available wave range.
	PathLease = "/v1/lease"
	// PathReport (POST, ReportRequest → ReportResponse) delivers a
	// completed range's outcomes.
	PathReport = "/v1/report"
	// PathStatus (GET) returns a StatusResponse progress snapshot.
	PathStatus = "/v1/status"
	// PathMetrics (GET) returns the coordinator's live
	// telemetry.Snapshot (every counter, gauge, and histogram, sorted
	// by name).
	PathMetrics = "/v1/metrics"
)

// Metric names, following internal/telemetry's flat-name convention.
// "fleet.*" metrics live in the coordinator's registry and feed the
// capacity artifact; "worker.*" metrics live in each worker's own
// registry (worker-process-local — they never cross the wire, so they
// can never perturb the coordinator's deterministic clock).
const (
	// MetricLeases counts lease grants (including re-leases).
	MetricLeases = "fleet.leases"
	// MetricReLeases counts grants of ranges whose previous lease
	// expired.
	MetricReLeases = "fleet.re_leases"
	// MetricReports counts accepted range reports.
	MetricReports = "fleet.reports"
	// MetricStaleReports counts rejected (duplicate or late) reports.
	MetricStaleReports = "fleet.stale_reports"
	// MetricWaves counts completed waves across all models.
	MetricWaves = "fleet.waves"
	// MetricSchedules counts schedules executed across all models.
	MetricSchedules = "fleet.schedules"
	// MetricWaveUS is the histogram of wave execution times (µs, per
	// the campaign's telemetry clock).
	MetricWaveUS = "fleet.wave_us"

	// MetricWorkerPollUS is the worker-side histogram of lease-call
	// round-trip latencies (µs).
	MetricWorkerPollUS = "worker.poll_us"
	// MetricWorkerRangeUS is the worker-side histogram of leased-range
	// execution times (µs).
	MetricWorkerRangeUS = "worker.range_us"
	// MetricWorkerBackoffs counts worker backoff sleeps (idle waits and
	// HTTP retries).
	MetricWorkerBackoffs = "worker.backoffs"
	// MetricWorkerLeases counts leases this worker executed.
	MetricWorkerLeases = "worker.leases"
	// MetricWorkerSchedules counts schedules this worker executed.
	MetricWorkerSchedules = "worker.schedules"
)

// WorkerMetric names a per-worker metric in the coordinator's registry
// (e.g. "fleet.worker.w3.schedules"). Per-worker rows are live
// telemetry only — which worker ran which lease is scheduling noise,
// so these names are deliberately excluded from the capacity artifact.
func WorkerMetric(worker, metric string) string {
	return "fleet.worker." + worker + "." + metric
}

// Config is the campaign configuration: everything a worker needs to
// reconstruct the exact model-check workload. It crosses the wire
// verbatim, so it holds only plain JSON-stable fields.
type Config struct {
	// Algorithm is the registry name workers resolve to a builder.
	Algorithm string `json:"algorithm"`
	// N and Entries define the workload: N processes, each performing
	// Entries acquire/CS/release passes.
	N       int `json:"n"`
	Entries int `json:"entries"`
	// Preemptions is the literal preemption bound K (0 = exactly
	// non-preemptive, as everywhere since PR 5).
	Preemptions int `json:"preemptions"`
	// MaxRuns caps the schedules explored per model
	// (default harness.DefaultCheckMaxRuns).
	MaxRuns int `json:"max_runs"`
	// MaxSteps bounds each explored run
	// (default harness.DefaultCheckMaxSteps).
	MaxSteps int64 `json:"max_steps"`
	// Models are the memory model names in reporting order
	// (default CC then DSM).
	Models []string `json:"models"`
}

// withDefaults returns cfg with the documented defaults filled in, so
// every component (coordinator, worker, local executor) normalizes the
// same way.
func (cfg Config) withDefaults() Config {
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = harness.DefaultCheckMaxRuns
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = harness.DefaultCheckMaxSteps
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{memsim.CC.String(), memsim.DSM.String()}
	}
	return cfg
}

// parseModels resolves the configured model names.
func (cfg Config) parseModels() ([]memsim.Model, error) {
	models := make([]memsim.Model, len(cfg.Models))
	for i, name := range cfg.Models {
		m, err := memsim.ParseModel(name)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return models, nil
}

// exploreOptions maps the campaign config onto the harness options a
// backend needs to build the one true explorer for a model. shards is
// the backend's local wave-shard width (fleet workers typically run a
// few shards each; the coordinator never executes schedules).
func (cfg Config) exploreOptions(shards int) harness.ExploreOptions {
	return harness.ExploreOptions{
		Preemptions: cfg.Preemptions,
		MaxRuns:     cfg.MaxRuns,
		MaxSteps:    cfg.MaxSteps,
		Workers:     shards,
	}
}

// LeaseRequest asks for the next available range of the active wave.
type LeaseRequest struct {
	// Worker identifies the claimant in the lease log and status
	// output; it never influences results.
	Worker string `json:"worker"`
}

// Lease statuses.
const (
	// StatusLease: the response carries a Lease to execute.
	StatusLease = "lease"
	// StatusWait: no range is currently available (between waves, or
	// every range is leased and unexpired) — poll again.
	StatusWait = "wait"
	// StatusDone: the campaign has finished; the worker should exit.
	StatusDone = "done"
)

// LeaseResponse answers a lease claim.
type LeaseResponse struct {
	Status string `json:"status"`
	// RetryMS is the suggested poll delay for StatusWait.
	RetryMS int `json:"retry_ms,omitempty"`
	// Lease is present iff Status == StatusLease.
	Lease *Lease `json:"lease,omitempty"`
}

// Lease is one claimable unit of work: a contiguous range [Lo, Hi) of
// the wave at (Model, Depth), with the schedules themselves inlined so
// workers stay stateless between leases.
type Lease struct {
	// ID is unique per grant; a re-leased range gets a fresh ID.
	ID int64 `json:"id"`
	// Model and Depth locate the wave this range belongs to.
	Model string `json:"model"`
	Depth int    `json:"depth"`
	// Lo and Hi bound the range within the wave's index space.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Schedules are the wave entries wave[Lo:Hi], in canonical order.
	// The root wave's single empty schedule serializes as null and
	// must stay nil end to end (FailingSchedule bit-identity).
	Schedules [][]obs.ExplorePreemption `json:"schedules"`
	// DeadlineMS is the lease duration in milliseconds: a worker that
	// has not reported by then may see its range re-leased. Purely
	// advisory on the worker side.
	DeadlineMS int64 `json:"deadline_ms"`
}

// Outcome is the wire form of one schedule's memsim.ScheduleOutcome.
type Outcome struct {
	// Failure is the schedule's error string, empty if it passed.
	Failure string `json:"failure,omitempty"`
	// Children are the next-wave schedules, in canonical order.
	Children [][]obs.ExplorePreemption `json:"children,omitempty"`
}

// ReportRequest delivers one completed lease's outcomes, indexed like
// the lease's Schedules.
type ReportRequest struct {
	Worker   string    `json:"worker"`
	LeaseID  int64     `json:"lease_id"`
	Model    string    `json:"model"`
	Depth    int       `json:"depth"`
	Lo       int       `json:"lo"`
	Hi       int       `json:"hi"`
	Outcomes []Outcome `json:"outcomes"`
}

// ReportResponse acknowledges a report. A rejected report is not an
// error for the worker — it means the range was already completed (a
// duplicate after a dropped response, or a re-leased range that raced)
// or the wave has moved on; the worker simply claims its next lease.
type ReportResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// StatusResponse is the coordinator's progress snapshot.
type StatusResponse struct {
	Algorithm string `json:"algorithm"`
	// State is "running", "done", or "failed".
	State string `json:"state"`
	// Model/Depth/Frontier describe the active wave (zero between
	// waves and after completion).
	Model    string `json:"model,omitempty"`
	Depth    int    `json:"depth"`
	Frontier int    `json:"frontier"`
	// Range accounting for the active wave.
	RangesPending int `json:"ranges_pending"`
	RangesLeased  int `json:"ranges_leased"`
	RangesDone    int `json:"ranges_done"`
	// Cumulative lease-log counters for the whole campaign.
	Leases       int `json:"leases"`
	ReLeases     int `json:"re_leases"`
	StaleReports int `json:"stale_reports"`
	// Waves and Schedules are the campaign's cumulative telemetry
	// counters (completed waves, executed schedules, all models).
	Waves     int64 `json:"waves"`
	Schedules int64 `json:"schedules"`
	// Workers is one row per worker the coordinator has heard from,
	// sorted by name.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Failure is the campaign error once State == "failed".
	Failure string `json:"failure,omitempty"`
}

// WorkerStatus is one worker's row in the coordinator's status
// snapshot — the liveness view the `fleet status -watch` dashboard
// renders.
type WorkerStatus struct {
	Worker string `json:"worker"`
	// Leases and Schedules count the grants issued to and schedules
	// reported by this worker.
	Leases    int64 `json:"leases"`
	Schedules int64 `json:"schedules"`
	// LastSeenMS is milliseconds since this worker's last request, per
	// the coordinator's lease clock.
	LastSeenMS int64 `json:"last_seen_ms"`
}

// LeaseEvent is one entry of the coordinator's lease log: the audit
// trail that proves which waves ran (the checkpoint-resume tests assert
// over it) and how often ranges had to be re-leased.
type LeaseEvent struct {
	// Kind is "lease", "re-lease", "report", or "stale-report".
	Kind    string
	Model   string
	Depth   int
	Lo, Hi  int
	Worker  string
	LeaseID int64
}

// toWire converts one schedule, preserving nil (the root schedule).
func toWire(s []memsim.Preemption) []obs.ExplorePreemption {
	if s == nil {
		return nil
	}
	out := make([]obs.ExplorePreemption, len(s))
	for i, p := range s {
		out[i] = obs.ExplorePreemption{Step: p.Step, Proc: p.Proc}
	}
	return out
}

// fromWire inverts toWire, preserving nil.
func fromWire(s []obs.ExplorePreemption) []memsim.Preemption {
	if s == nil {
		return nil
	}
	out := make([]memsim.Preemption, len(s))
	for i, p := range s {
		out[i] = memsim.Preemption{Step: p.Step, Proc: p.Proc}
	}
	return out
}

// schedulesToWire converts a wave slice.
func schedulesToWire(ss [][]memsim.Preemption) [][]obs.ExplorePreemption {
	if ss == nil {
		return nil
	}
	out := make([][]obs.ExplorePreemption, len(ss))
	for i, s := range ss {
		out[i] = toWire(s)
	}
	return out
}

// schedulesFromWire inverts schedulesToWire.
func schedulesFromWire(ss [][]obs.ExplorePreemption) [][]memsim.Preemption {
	if ss == nil {
		return nil
	}
	out := make([][]memsim.Preemption, len(ss))
	for i, s := range ss {
		out[i] = fromWire(s)
	}
	return out
}
