package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"fetchphi/internal/harness"
)

// CheckOptions configure the in-process fleet check.
type CheckOptions struct {
	// Workers is the number of fleet workers to run (default 2).
	Workers int
	// Shards is each worker's local wave-shard width (default 1).
	Shards int
	// LeaseSize, LeaseTimeout, CheckpointPath, CapacityPath, CreatedBy,
	// Commit pass through to the coordinator.
	LeaseSize      int
	LeaseTimeout   time.Duration
	CheckpointPath string
	CapacityPath   string
	CreatedBy      string
	Commit         string
}

// Check is the fleet-backed harness.CheckSharded: it stands up a real
// coordinator and Workers real workers connected over loopback HTTP,
// runs the full lease/report protocol, and returns reports in model
// order with Runs, Exhausted, DepthRuns, and FailingSchedule
// bit-identical to the single-machine paths (failure errors are
// message-identical; their concrete type is erased by the wire). It is
// both the production path behind `fleet run` and the equivalence
// test's subject.
func Check(b harness.Builder, cfg Config, opts CheckOptions) ([]harness.ModelReport, error) {
	coord := NewCoordinator(cfg, CoordinatorOptions{
		LeaseSize:      opts.LeaseSize,
		LeaseTimeout:   opts.LeaseTimeout,
		CheckpointPath: opts.CheckpointPath,
		CapacityPath:   opts.CapacityPath,
		CreatedBy:      opts.CreatedBy,
		Commit:         opts.Commit,
	})
	return CheckWith(coord, b, opts)
}

// CheckWith runs the in-process fleet over a caller-built coordinator,
// so tests can inject clocks, lease sizes, and fault-y transports
// while reusing the serve-and-spawn plumbing.
func CheckWith(coord *Coordinator, b harness.Builder, opts CheckOptions) ([]harness.ModelReport, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: loopback listener: %w", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	go coord.Run()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		w := &Worker{
			ID:          fmt.Sprintf("w%d", i),
			Coordinator: "http://" + ln.Addr().String(),
			Resolve:     func(string) (harness.Builder, error) { return b, nil },
			Shards:      opts.Shards,
			Poll:        2 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	reports, err := coord.Wait()
	wg.Wait()
	return reports, err
}
