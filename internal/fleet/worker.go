package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
)

// Worker is the fleet's data plane: a stateless loop that claims
// leases from a coordinator, executes them through the exact same
// explorer construction as every local check path
// (harness.CheckExplorer + RunScheduleRange), and reports the
// outcomes. Workers carry no campaign state between leases, which is
// why killing one mid-lease loses nothing but time: the coordinator
// re-leases the range at its deadline and any worker re-derives the
// identical outcomes.
type Worker struct {
	// ID names the worker in the coordinator's lease log.
	ID string
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Resolve maps the campaign's algorithm name to a builder
	// (production workers pass experiments.Algorithm; in-process
	// checks close over the builder under test).
	Resolve func(algorithm string) (harness.Builder, error)
	// Shards is the local wave-shard width per lease (<= 1:
	// sequential execution of the leased range).
	Shards int
	// Client is the HTTP client (default http.DefaultClient); tests
	// inject fault-y transports here.
	Client *http.Client
	// Poll is the idle re-poll interval when the coordinator has no
	// lease to grant (default 50ms; the coordinator's RetryMS hint
	// overrides it per response).
	Poll time.Duration
	// Retries is the attempt budget per HTTP call (default 5) — a
	// dropped response is retried, and a duplicate report is ignored
	// idempotently on the coordinator side.
	Retries int

	explorers map[memsim.Model]*memsim.Explorer
	build     harness.Builder
	cfg       Config
}

// Run executes leases until the coordinator reports the campaign done,
// the context is cancelled, or the HTTP retry budget is exhausted on a
// call. Returns nil on a normal "done" exit.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		w.Client = http.DefaultClient
	}
	if w.Poll <= 0 {
		w.Poll = 50 * time.Millisecond
	}
	if w.Retries <= 0 {
		w.Retries = 5
	}
	if err := w.fetchConfig(ctx); err != nil {
		return err
	}
	b, err := w.Resolve(w.cfg.Algorithm)
	if err != nil {
		return err
	}
	w.build = b
	w.explorers = make(map[memsim.Model]*memsim.Explorer)

	for {
		var resp LeaseResponse
		if err := w.call(ctx, PathLease, LeaseRequest{Worker: w.ID}, &resp); err != nil {
			return err
		}
		switch resp.Status {
		case StatusDone:
			return nil
		case StatusWait:
			delay := w.Poll
			if resp.RetryMS > 0 {
				delay = time.Duration(resp.RetryMS) * time.Millisecond
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return err
			}
		case StatusLease:
			if err := w.execute(ctx, resp.Lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: coordinator returned unknown lease status %q", resp.Status)
		}
	}
}

// execute runs one lease and reports its outcomes.
func (w *Worker) execute(ctx context.Context, lease *Lease) error {
	if lease == nil {
		return fmt.Errorf("fleet: lease response carried no lease")
	}
	model, err := memsim.ParseModel(lease.Model)
	if err != nil {
		return err
	}
	e, ok := w.explorers[model]
	if !ok {
		e = harness.CheckExplorer(w.build, model, w.cfg.N, w.cfg.Entries, w.cfg.exploreOptions(w.Shards))
		w.explorers[model] = e
	}
	outs := e.RunScheduleRange(schedulesFromWire(lease.Schedules))
	report := ReportRequest{
		Worker:   w.ID,
		LeaseID:  lease.ID,
		Model:    lease.Model,
		Depth:    lease.Depth,
		Lo:       lease.Lo,
		Hi:       lease.Hi,
		Outcomes: make([]Outcome, len(outs)),
	}
	for i, o := range outs {
		if o.Err != nil {
			report.Outcomes[i].Failure = o.Err.Error()
		}
		report.Outcomes[i].Children = schedulesToWire(o.Children)
	}
	var resp ReportResponse
	// A rejected report is fine: the range was completed by a
	// re-lease, or this is a retry after a lost response.
	return w.call(ctx, PathReport, report, &resp)
}

// fetchConfig loads the campaign configuration with retries.
func (w *Worker) fetchConfig(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < w.Retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, w.Poll); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+PathConfig, nil)
		if err != nil {
			return err
		}
		resp, err := w.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		err = decodeBody(resp, &w.cfg)
		if err == nil {
			w.cfg = w.cfg.withDefaults()
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("fleet: fetch config from %s: %w", w.Coordinator, lastErr)
}

// call POSTs a JSON body and decodes the JSON response, retrying
// transport failures (including dropped responses) up to w.Retries
// times. Every retried POST is safe: leases are granted fresh per
// call, and duplicate reports are idempotent on the coordinator.
func (w *Worker) call(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < w.Retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, w.Poll); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		err = decodeBody(resp, out)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("fleet: %s %s: %w", path, w.Coordinator, lastErr)
}

// decodeBody drains and decodes one JSON response.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	//fetchphilint:ignore determinism worker poll pacing; never touches results
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
