package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"time"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/telemetry"
)

// Worker is the fleet's data plane: a stateless loop that claims
// leases from a coordinator, executes them through the exact same
// explorer construction as every local check path
// (harness.CheckExplorer + RunScheduleRange), and reports the
// outcomes. Workers carry no campaign state between leases, which is
// why killing one mid-lease loses nothing but time: the coordinator
// re-leases the range at its deadline and any worker re-derives the
// identical outcomes.
type Worker struct {
	// ID names the worker in the coordinator's lease log.
	ID string
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Resolve maps the campaign's algorithm name to a builder
	// (production workers pass experiments.Algorithm; in-process
	// checks close over the builder under test).
	Resolve func(algorithm string) (harness.Builder, error)
	// Shards is the local wave-shard width per lease (<= 1:
	// sequential execution of the leased range).
	Shards int
	// Client is the HTTP client (default http.DefaultClient); tests
	// inject fault-y transports here.
	Client *http.Client
	// Poll is the idle re-poll interval when the coordinator has no
	// lease to grant (default 50ms; the coordinator's RetryMS hint
	// overrides it per response).
	Poll time.Duration
	// Retries is the attempt budget per HTTP call (default 5) — a
	// dropped response is retried, and a duplicate report is ignored
	// idempotently on the coordinator side.
	Retries int
	// MaxBackoff caps the jittered exponential backoff between idle
	// polls and between HTTP retries (default 2s). The base delay is
	// the coordinator's RetryMS hint (idle polls) or Poll (retries);
	// consecutive waits double it up to this cap.
	MaxBackoff time.Duration
	// Metrics receives the worker's local telemetry: poll latency,
	// range execution time, lease/schedule counts, backoff events.
	// Worker metrics never cross the wire — they are process-local, so
	// they cannot perturb the coordinator's deterministic telemetry
	// clock. Nil selects a fresh wall-clock registry.
	Metrics *telemetry.Registry
	// Sleep substitutes the backoff sleeper (default: a timer honoring
	// ctx). Tests inject instant recorders to pin the backoff sequence
	// without waiting it out.
	Sleep func(ctx context.Context, d time.Duration) error

	explorers map[memsim.Model]*memsim.Explorer
	build     harness.Builder
	cfg       Config
	rng       *rand.Rand
}

// jitterSeed derives the worker's deterministic jitter seed from its
// ID: jitter de-synchronizes workers (its whole point), while a fixed
// per-ID seed keeps any single worker's backoff sequence reproducible
// under test.
func jitterSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// Run executes leases until the coordinator reports the campaign done,
// the context is cancelled, or the HTTP retry budget is exhausted on a
// call. Returns nil on a normal "done" exit.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		w.Client = http.DefaultClient
	}
	if w.Poll <= 0 {
		w.Poll = 50 * time.Millisecond
	}
	if w.Retries <= 0 {
		w.Retries = 5
	}
	if w.MaxBackoff <= 0 {
		w.MaxBackoff = 2 * time.Second
	}
	if w.Metrics == nil {
		w.Metrics = telemetry.New(nil)
	}
	if w.Sleep == nil {
		w.Sleep = sleepCtx
	}
	w.rng = rand.New(rand.NewSource(jitterSeed(w.ID)))
	if err := w.fetchConfig(ctx); err != nil {
		return err
	}
	b, err := w.Resolve(w.cfg.Algorithm)
	if err != nil {
		return err
	}
	w.build = b
	w.explorers = make(map[memsim.Model]*memsim.Explorer)

	waits := 0
	for {
		var resp LeaseResponse
		stopPoll := w.Metrics.Time(MetricWorkerPollUS)
		err := w.call(ctx, PathLease, LeaseRequest{Worker: w.ID}, &resp)
		stopPoll()
		if err != nil {
			return err
		}
		switch resp.Status {
		case StatusDone:
			return nil
		case StatusWait:
			base := w.Poll
			if resp.RetryMS > 0 {
				base = time.Duration(resp.RetryMS) * time.Millisecond
			}
			if err := w.backoff(ctx, base, waits); err != nil {
				return err
			}
			waits++
		case StatusLease:
			waits = 0
			w.Metrics.Counter(MetricWorkerLeases).Inc()
			if err := w.execute(ctx, resp.Lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: coordinator returned unknown lease status %q", resp.Status)
		}
	}
}

// backoff sleeps for the streak-th consecutive jittered delay: base
// doubled streak times, capped at MaxBackoff, then jittered uniformly
// over its upper half so idle workers de-synchronize instead of
// hammering the coordinator in lockstep.
func (w *Worker) backoff(ctx context.Context, base time.Duration, streak int) error {
	d := base
	for i := 0; i < streak && d < w.MaxBackoff; i++ {
		d *= 2
	}
	if d > w.MaxBackoff {
		d = w.MaxBackoff
	}
	if half := int64(d / 2); half > 0 {
		d = d/2 + time.Duration(w.rng.Int63n(half+1))
	}
	w.Metrics.Counter(MetricWorkerBackoffs).Inc()
	return w.Sleep(ctx, d)
}

// execute runs one lease and reports its outcomes.
func (w *Worker) execute(ctx context.Context, lease *Lease) error {
	if lease == nil {
		return fmt.Errorf("fleet: lease response carried no lease")
	}
	model, err := memsim.ParseModel(lease.Model)
	if err != nil {
		return err
	}
	e, ok := w.explorers[model]
	if !ok {
		e = harness.CheckExplorer(w.build, model, w.cfg.N, w.cfg.Entries, w.cfg.exploreOptions(w.Shards))
		w.explorers[model] = e
	}
	stop := w.Metrics.Time(MetricWorkerRangeUS)
	outs := e.RunScheduleRange(schedulesFromWire(lease.Schedules))
	stop()
	w.Metrics.Counter(MetricWorkerSchedules).Add(int64(len(outs)))
	report := ReportRequest{
		Worker:   w.ID,
		LeaseID:  lease.ID,
		Model:    lease.Model,
		Depth:    lease.Depth,
		Lo:       lease.Lo,
		Hi:       lease.Hi,
		Outcomes: make([]Outcome, len(outs)),
	}
	for i, o := range outs {
		if o.Err != nil {
			report.Outcomes[i].Failure = o.Err.Error()
		}
		report.Outcomes[i].Children = schedulesToWire(o.Children)
	}
	var resp ReportResponse
	// A rejected report is fine: the range was completed by a
	// re-lease, or this is a retry after a lost response.
	return w.call(ctx, PathReport, report, &resp)
}

// fetchConfig loads the campaign configuration with retries.
func (w *Worker) fetchConfig(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < w.Retries; attempt++ {
		if attempt > 0 {
			if err := w.backoff(ctx, w.Poll, attempt-1); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+PathConfig, nil)
		if err != nil {
			return err
		}
		resp, err := w.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		err = decodeBody(resp, &w.cfg)
		if err == nil {
			w.cfg = w.cfg.withDefaults()
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("fleet: fetch config from %s: %w", w.Coordinator, lastErr)
}

// call POSTs a JSON body and decodes the JSON response, retrying
// transport failures (including dropped responses) with jittered
// backoff, up to w.Retries times. Every retried POST is safe: leases
// are granted fresh per call, and duplicate reports are idempotent on
// the coordinator.
func (w *Worker) call(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < w.Retries; attempt++ {
		if attempt > 0 {
			if err := w.backoff(ctx, w.Poll, attempt-1); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		err = decodeBody(resp, out)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("fleet: %s %s: %w", path, w.Coordinator, lastErr)
}

// decodeBody drains and decodes one JSON response.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	//fetchphilint:ignore determinism worker poll pacing; never touches results
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
