package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
)

// tasLock is a trivially correct test-and-set mutex; brokenLock grants
// immediately without excluding anyone. Both mirror the harness test
// fixtures so fleet results can be compared against CheckSharded on a
// passing and a failing space.
type tasLock struct{ lock memsim.Var }

func newTASLock(m *memsim.Machine) harness.Algorithm {
	return &tasLock{lock: m.NewVar("tas.lock", memsim.HomeGlobal, 0)}
}

func (f *tasLock) Name() string { return "tas-test" }

func (f *tasLock) Acquire(p *memsim.Proc) {
	for {
		if p.RMW(f.lock, func(memsim.Word) memsim.Word { return 1 }) == 0 {
			return
		}
		p.AwaitEq(f.lock, 0)
	}
}

func (f *tasLock) Release(p *memsim.Proc) { p.Write(f.lock, 0) }

type brokenLock struct{}

func newBrokenLock(*memsim.Machine) harness.Algorithm { return brokenLock{} }

func (brokenLock) Name() string         { return "broken-test" }
func (brokenLock) Acquire(*memsim.Proc) {}
func (brokenLock) Release(*memsim.Proc) {}

// testConfig is the shared small campaign: both models, N=2, K=2.
func testConfig() Config {
	return Config{Algorithm: "test", N: 2, Entries: 2, Preemptions: 2}
}

// refReports runs the single-machine reference.
func refReports(t *testing.T, b harness.Builder) ([]harness.ModelReport, error) {
	t.Helper()
	return harness.CheckSharded(b, 2, 2, harness.ExploreOptions{Preemptions: 2, Workers: 1})
}

// assertBitIdentical checks the acceptance criterion: Runs, Exhausted,
// DepthRuns, and FailingSchedule bit-identical; errors
// message-identical (the wire erases the concrete error type).
func assertBitIdentical(t *testing.T, label string, got, ref []harness.ModelReport, gotErr, refErr error) {
	t.Helper()
	if (gotErr != nil) != (refErr != nil) {
		t.Fatalf("%s: verdict diverged: %v vs %v", label, gotErr, refErr)
	}
	if gotErr != nil && gotErr.Error() != refErr.Error() {
		t.Fatalf("%s: error %q, want %q", label, gotErr, refErr)
	}
	if len(got) != len(ref) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(ref))
	}
	for i := range got {
		g, r := got[i], ref[i]
		if g.Model != r.Model || g.Result.Runs != r.Result.Runs ||
			g.Result.Exhausted != r.Result.Exhausted ||
			!reflect.DeepEqual(g.Result.DepthRuns, r.Result.DepthRuns) ||
			!reflect.DeepEqual(g.Result.FailingSchedule, r.Result.FailingSchedule) {
			t.Fatalf("%s: model %v diverged:\n got %+v\nwant %+v", label, g.Model, g.Result, r.Result)
		}
		if (g.Result.Err != nil) != (r.Result.Err != nil) ||
			(g.Result.Err != nil && g.Result.Err.Error() != r.Result.Err.Error()) {
			t.Fatalf("%s: model %v error %v, want %v", label, g.Model, g.Result.Err, r.Result.Err)
		}
	}
}

// TestCampaignLocalMatchesCheckSharded: the campaign engine driving the
// in-process LocalExecutor reproduces CheckSharded bit for bit — the
// engine's wave loop is a faithful lift of Explorer.Run.
func TestCampaignLocalMatchesCheckSharded(t *testing.T) {
	for _, fx := range []struct {
		name  string
		build harness.Builder
	}{{"correct", newTASLock}, {"broken", newBrokenLock}} {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			ref, refErr := refReports(t, fx.build)
			cfg := testConfig()
			camp := &Campaign{Config: cfg, Exec: &LocalExecutor{Build: fx.build, Config: cfg, Shards: 2}}
			got, art, err := camp.Run()
			assertBitIdentical(t, "local campaign", got, ref, err, refErr)
			if art == nil || !art.Checkpoint.Complete {
				t.Fatalf("campaign artifact: %+v", art)
			}
		})
	}
}

// TestCampaignHonorsMaxRuns: canonical-prefix truncation matches the
// explorer when the cap lands inside a wave.
func TestCampaignHonorsMaxRuns(t *testing.T) {
	for _, maxRuns := range []int{1, 2, 7, 50} {
		cfg := testConfig()
		cfg.MaxRuns = maxRuns
		ref, refErr := harness.CheckSharded(newTASLock, 2, 2, harness.ExploreOptions{Preemptions: 2, MaxRuns: maxRuns, Workers: 1})
		got, _, err := (&Campaign{Config: cfg, Exec: &LocalExecutor{Build: newTASLock, Config: cfg}}).Run()
		assertBitIdentical(t, "capped campaign", got, ref, err, refErr)
	}
}

// TestFleetEquivalence is the acceptance criterion: coordinator +
// {1,2,4} workers over loopback HTTP produce results bit-identical to
// single-machine CheckSharded, on a passing and a failing space, at a
// lease size small enough to force many leases per wave.
func TestFleetEquivalence(t *testing.T) {
	for _, fx := range []struct {
		name  string
		build harness.Builder
	}{{"correct", newTASLock}, {"broken", newBrokenLock}} {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			ref, refErr := refReports(t, fx.build)
			for _, workers := range []int{1, 2, 4} {
				got, err := Check(fx.build, testConfig(), CheckOptions{Workers: workers, LeaseSize: 5})
				assertBitIdentical(t, fmt.Sprintf("fleet workers=%d", workers), got, ref, err, refErr)
			}
		})
	}
}

// fakeClock is an injectable lease clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestFleetWorkerLossReleases injects a worker death mid-lease: a
// zombie claims the first lease and never reports. The coordinator
// re-leases the range once its deadline passes (driven by a fake
// clock, so no wall-clock flakiness) and the final report stays
// bit-identical to the single-machine run.
func TestFleetWorkerLossReleases(t *testing.T) {
	ref, refErr := refReports(t, newTASLock)

	clock := &fakeClock{}
	coord := NewCoordinator(testConfig(), CoordinatorOptions{
		LeaseSize:    3,
		LeaseTimeout: time.Second,
		RetryMS:      1,
		Now:          clock.now,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	go coord.Run()

	// The zombie claims the root wave's only lease and dies.
	var lr LeaseResponse
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "zombie"}, &lr)
	if lr.Status != StatusLease {
		t.Fatalf("zombie claim: %+v", lr)
	}

	// A healthy worker joins; everything the zombie holds is locked
	// until the deadline passes, so advance the clock until the
	// campaign drains. (The worker's own polling is real time; the
	// lease deadline is the fake clock.)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				clock.advance(2 * time.Second)
			}
		}
	}()
	w := &Worker{
		ID:          "healthy",
		Coordinator: srv.URL,
		Resolve:     func(string) (harness.Builder, error) { return newTASLock, nil },
		Poll:        time.Millisecond,
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}
	got, err := coord.Wait()
	close(stop)
	assertBitIdentical(t, "after worker loss", got, ref, err, refErr)

	reLeases := 0
	for _, ev := range coord.LeaseLog() {
		if ev.Kind == "re-lease" {
			reLeases++
		}
	}
	if reLeases == 0 {
		t.Fatal("zombie's range was never re-leased")
	}
}

// droppingTransport forwards requests but returns a transport error
// for the first matching response — after the server has processed the
// request, exactly like a response lost in flight.
type droppingTransport struct {
	match   string
	dropped atomic.Bool
}

func (d *droppingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && strings.Contains(req.URL.Path, d.match) && d.dropped.CompareAndSwap(false, true) {
		resp.Body.Close()
		return nil, errors.New("injected fault: response dropped in flight")
	}
	return resp, err
}

// TestFleetDroppedReportResponse: the coordinator processes a report
// but the response is lost. The worker retries, the duplicate is
// ignored idempotently, and the final result stays bit-identical.
func TestFleetDroppedReportResponse(t *testing.T) {
	ref, refErr := refReports(t, newTASLock)
	coord := NewCoordinator(testConfig(), CoordinatorOptions{LeaseSize: 5, RetryMS: 1})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	go coord.Run()

	transport := &droppingTransport{match: PathReport}
	w := &Worker{
		ID:          "flaky-net",
		Coordinator: srv.URL,
		Resolve:     func(string) (harness.Builder, error) { return newTASLock, nil },
		Client:      &http.Client{Transport: transport},
		Poll:        time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}
	got, err := coord.Wait()
	assertBitIdentical(t, "after dropped response", got, ref, err, refErr)
	if !transport.dropped.Load() {
		t.Fatal("fault was never injected")
	}
	stale := 0
	for _, ev := range coord.LeaseLog() {
		if ev.Kind == "stale-report" {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("the retried duplicate report never reached the coordinator")
	}
}

// TestFleetCheckpointResumeGolden is the SIGKILL-equivalence test: a
// coordinator stopped between waves (AfterWave abort — the checkpoint
// is already on disk, exactly like a kill after the atomic rename)
// and restarted from the artifact must (a) never re-explore a
// completed wave, proven by the lease log, and (b) produce a final
// artifact byte-identical to an uninterrupted run's.
func TestFleetCheckpointResumeGolden(t *testing.T) {
	ref, refErr := refReports(t, newTASLock)
	dir := t.TempDir()

	// Uninterrupted fleet run.
	fullPath := filepath.Join(dir, "full.json")
	gotFull, errFull := Check(newTASLock, testConfig(), CheckOptions{
		Workers: 2, LeaseSize: 5, CheckpointPath: fullPath, CreatedBy: "golden",
	})
	assertBitIdentical(t, "uninterrupted fleet", gotFull, ref, errFull, refErr)

	// Interrupted run: stop the coordinator after the CC model has
	// completed two waves.
	resumePath := filepath.Join(dir, "resume.json")
	killed := errors.New("simulated coordinator kill")
	waves := 0
	coord1 := NewCoordinator(testConfig(), CoordinatorOptions{
		LeaseSize:      5,
		CheckpointPath: resumePath,
		CreatedBy:      "golden",
		AfterWave: func(model memsim.Model, depth int) error {
			waves++
			if waves >= 2 {
				return killed
			}
			return nil
		},
	})
	_, err := CheckWith(coord1, newTASLock, CheckOptions{Workers: 2})
	if !errors.Is(err, killed) {
		t.Fatalf("interrupted run ended with %v, want the injected kill", err)
	}
	ckpt := readArtifactJSON(t, resumePath)
	if ckpt["checkpoint"].(map[string]any)["complete"].(bool) {
		t.Fatal("interrupted checkpoint claims completion")
	}

	// Restart from the artifact.
	coord2 := NewCoordinator(testConfig(), CoordinatorOptions{
		LeaseSize:      5,
		CheckpointPath: resumePath,
		CreatedBy:      "golden",
	})
	got2, err2 := CheckWith(coord2, newTASLock, CheckOptions{Workers: 2})
	assertBitIdentical(t, "resumed fleet", got2, ref, err2, refErr)

	// Lease-log proof: the restarted coordinator never leased a wave
	// below the checkpointed resume depth for the first model.
	resumeDepth := minLeasedDepth(coord2.LeaseLog(), memsim.CC.String())
	if resumeDepth < 2 {
		t.Fatalf("restarted coordinator re-explored wave %d of CC, which the checkpoint had completed", resumeDepth)
	}

	// Byte-for-byte: the resumed final artifact equals the
	// uninterrupted one.
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, resumed) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n--- full ---\n%s\n--- resumed ---\n%s", full, resumed)
	}
}

// minLeasedDepth returns the smallest depth with a lease/re-lease
// event for the given model (MaxInt when none).
func minLeasedDepth(events []LeaseEvent, model string) int {
	min := int(^uint(0) >> 1)
	for _, ev := range events {
		if (ev.Kind == "lease" || ev.Kind == "re-lease") && ev.Model == model && ev.Depth < min {
			min = ev.Depth
		}
	}
	return min
}

// TestCampaignRefusesForeignCheckpoint: resuming under a different
// configuration must fail loudly, not silently corrupt the merge.
func TestCampaignRefusesForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cfg := testConfig()
	if _, _, err := (&Campaign{Config: cfg, Exec: &LocalExecutor{Build: newTASLock, Config: cfg}, CheckpointPath: path}).Run(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Preemptions = 1
	_, _, err := (&Campaign{Config: other, Exec: &LocalExecutor{Build: newTASLock, Config: other}, CheckpointPath: path}).Run()
	if err == nil || !strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

// TestStatusEndpoint: the snapshot reflects completion and cumulative
// lease accounting.
func TestStatusEndpoint(t *testing.T) {
	coord := NewCoordinator(testConfig(), CoordinatorOptions{LeaseSize: 5})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	got, err := CheckWith(coord, newTASLock, CheckOptions{Workers: 2})
	if err != nil || len(got) == 0 {
		t.Fatalf("fleet check: %v", err)
	}
	resp, err := http.Get(srv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	var status StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.State != "done" || status.Leases == 0 || status.Algorithm != "test" {
		t.Fatalf("status: %+v", status)
	}
}

// TestLeaseTableGrid pins the lease table's claim/report mechanics.
func TestLeaseTableGrid(t *testing.T) {
	clock := &fakeClock{}
	wave := make([][]memsim.Preemption, 7)
	tab := newLeaseTable(memsim.CC, 3, wave, 3, time.Second, clock.now)
	if len(tab.ranges) != 3 {
		t.Fatalf("7 schedules at pitch 3: %d ranges, want 3", len(tab.ranges))
	}
	l1, kind, ok := tab.claim("a", 1)
	if !ok || kind != "lease" || l1.Lo != 0 || l1.Hi != 3 {
		t.Fatalf("first claim: %+v %s %v", l1, kind, ok)
	}
	// Nothing expired: the same range is not claimable again.
	l2, _, _ := tab.claim("b", 2)
	if l2.Lo == l1.Lo {
		t.Fatalf("unexpired range re-leased: %+v", l2)
	}
	if l, _, _ := tab.claim("b", 20); l.Lo != 6 {
		t.Fatalf("third claim: %+v", l)
	}
	if _, _, ok := tab.claim("b", 21); ok {
		t.Fatal("claim granted with every range leased and unexpired")
	}
	// Expiry makes the oldest lease claimable again, as a re-lease.
	clock.advance(2 * time.Second)
	l3, kind, ok := tab.claim("c", 3)
	if !ok || kind != "re-lease" || l3.Lo != 0 {
		t.Fatalf("expired claim: %+v %s %v", l3, kind, ok)
	}
	// A report from the original (expired) lease still lands — the
	// outcomes are deterministic — and the re-lease's duplicate is
	// then ignored.
	outs := make([]memsim.ScheduleOutcome, 3)
	if acc, err := tab.report(&ReportRequest{Lo: 0, Hi: 3, LeaseID: 1}, outs); !acc || err != nil {
		t.Fatalf("late report rejected: %v %v", acc, err)
	}
	if acc, err := tab.report(&ReportRequest{Lo: 0, Hi: 3, LeaseID: 3}, outs); acc || err != nil {
		t.Fatalf("duplicate report not ignored: %v %v", acc, err)
	}
	// Geometry violations are errors.
	if _, err := tab.report(&ReportRequest{Lo: 1, Hi: 3}, outs[:2]); err == nil {
		t.Fatal("off-grid report accepted")
	}
}

// postJSON is a minimal raw client for protocol-level tests.
func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// readArtifactJSON loads an artifact as raw JSON for shape assertions.
func readArtifactJSON(t *testing.T, path string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}
