package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/obs"
)

// Coordinator defaults.
const (
	// DefaultLeaseSize is the number of schedules per lease: small
	// enough that a late wave balances across workers, large enough
	// that HTTP round-trips stay cold relative to simulation cost
	// (the same trade-off as memsim's claimBatch, scaled up for
	// network latency).
	DefaultLeaseSize = 256
	// DefaultLeaseTimeout is how long a worker holds a range before
	// it becomes claimable again.
	DefaultLeaseTimeout = 30 * time.Second
	// DefaultRetryMS is the poll delay suggested to workers when no
	// range is available.
	DefaultRetryMS = 100
)

// CoordinatorOptions tune a coordinator; the zero value selects the
// documented defaults.
type CoordinatorOptions struct {
	// LeaseSize is the schedules-per-lease grid pitch.
	LeaseSize int
	// LeaseTimeout is the re-lease deadline.
	LeaseTimeout time.Duration
	// RetryMS is the wait-poll hint sent to workers.
	RetryMS int
	// CheckpointPath enables resumable checkpoints (see Campaign).
	CheckpointPath string
	// CreatedBy and Commit stamp the artifact header
	// (default "fleet-coordinator" / empty).
	CreatedBy string
	Commit    string
	// Now substitutes the lease clock — fault-injection tests advance
	// a fake clock to expire leases deterministically. Nil selects the
	// wall clock (the one legitimately nondeterministic input here;
	// deadlines gate only *when* a range is re-offered, never what its
	// outcomes are).
	Now func() time.Time
	// Progress, if non-nil, observes each wave start.
	Progress func(model memsim.Model, p memsim.ExploreProgress)
	// AfterWave passes through to Campaign.AfterWave: it fires after
	// each wave is checkpointed, and a non-nil error stops the
	// campaign on the wave boundary — the controlled-shutdown (and
	// SIGKILL-equivalence test) hook.
	AfterWave func(model memsim.Model, depth int) error
}

// Coordinator is the fleet's control plane: it owns the campaign wave
// loop, decomposes each wave into leases, and merges reported outcomes
// back into the canonical index order. It executes no schedules
// itself — workers (in other processes, or in-process via Check) do.
type Coordinator struct {
	cfg      Config
	opts     CoordinatorOptions
	now      func() time.Time
	leaseSeq atomic.Int64

	mu           sync.Mutex
	table        *leaseTable // active wave, nil between waves
	events       []LeaseEvent
	reLeases     int
	staleReports int
	finished     bool
	reports      []harness.ModelReport
	artifact     *obs.ExploreArtifact
	err          error

	done chan struct{}
}

// NewCoordinator prepares a coordinator for one campaign. Call Run
// (usually in a goroutine) to start the wave loop, and serve Handler
// somewhere workers can reach.
func NewCoordinator(cfg Config, opts CoordinatorOptions) *Coordinator {
	if opts.LeaseSize <= 0 {
		opts.LeaseSize = DefaultLeaseSize
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = DefaultLeaseTimeout
	}
	if opts.RetryMS <= 0 {
		opts.RetryMS = DefaultRetryMS
	}
	if opts.CreatedBy == "" {
		opts.CreatedBy = "fleet-coordinator"
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Coordinator{cfg: cfg.withDefaults(), opts: opts, now: now, done: make(chan struct{})}
}

// Run drives the campaign to completion and records its outcome; it
// returns what Wait returns. Safe to call exactly once.
func (c *Coordinator) Run() ([]harness.ModelReport, error) {
	camp := &Campaign{
		Config:         c.cfg,
		Exec:           c,
		CheckpointPath: c.opts.CheckpointPath,
		CreatedBy:      c.opts.CreatedBy,
		Commit:         c.opts.Commit,
		Progress:       c.opts.Progress,
		AfterWave:      c.opts.AfterWave,
	}
	reports, art, err := camp.Run()
	c.mu.Lock()
	c.finished = true
	c.reports = reports
	c.artifact = art
	c.err = err
	c.mu.Unlock()
	close(c.done)
	return reports, err
}

// Wait blocks until the campaign finishes and returns its reports and
// first-failing-model error, exactly like harness.CheckSharded.
func (c *Coordinator) Wait() ([]harness.ModelReport, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports, c.err
}

// Artifact returns the final explore artifact once the campaign has
// finished (nil before that, or when the campaign aborted).
func (c *Coordinator) Artifact() *obs.ExploreArtifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.artifact
}

// LeaseLog returns a copy of the lease log: every grant, re-lease,
// accepted report, and stale report, in arrival order. The log is an
// audit trail — the checkpoint-resume tests use it to prove completed
// waves are never re-explored — not part of the deterministic result.
func (c *Coordinator) LeaseLog() []LeaseEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LeaseEvent(nil), c.events...)
}

// ExecWave implements WaveExecutor: it publishes the wave as a lease
// table, waits for workers to complete every range, and collects the
// outcomes in canonical order.
func (c *Coordinator) ExecWave(model memsim.Model, depth int, wave [][]memsim.Preemption) []memsim.ScheduleOutcome {
	t := newLeaseTable(model, depth, wave, c.opts.LeaseSize, c.opts.LeaseTimeout, c.now)
	c.mu.Lock()
	c.table = t
	c.mu.Unlock()
	<-t.done
	c.mu.Lock()
	c.table = nil
	c.mu.Unlock()
	return t.collect()
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathConfig, c.handleConfig)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathReport, c.handleReport)
	mux.HandleFunc(PathStatus, c.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.cfg)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("fleet: bad lease request: %v", err), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	finished, table := c.finished, c.table
	c.mu.Unlock()
	if finished {
		writeJSON(w, LeaseResponse{Status: StatusDone})
		return
	}
	if table == nil {
		writeJSON(w, LeaseResponse{Status: StatusWait, RetryMS: c.opts.RetryMS})
		return
	}
	lease, kind, ok := table.claim(req.Worker, c.leaseSeq.Add(1))
	if !ok {
		writeJSON(w, LeaseResponse{Status: StatusWait, RetryMS: c.opts.RetryMS})
		return
	}
	c.mu.Lock()
	if kind == "re-lease" {
		c.reLeases++
	}
	c.events = append(c.events, LeaseEvent{
		Kind: kind, Model: lease.Model, Depth: lease.Depth,
		Lo: lease.Lo, Hi: lease.Hi, Worker: req.Worker, LeaseID: lease.ID,
	})
	c.mu.Unlock()
	writeJSON(w, LeaseResponse{Status: StatusLease, Lease: lease})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("fleet: bad report: %v", err), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	table := c.table
	c.mu.Unlock()
	if table == nil || table.model.String() != req.Model || table.depth != req.Depth {
		// The wave this report belongs to has already completed (its
		// range was re-leased and reported by someone else); nothing
		// to merge, and nothing lost — outcomes are deterministic.
		c.noteStale(&req)
		writeJSON(w, ReportResponse{Accepted: false, Reason: "no active wave at that model/depth"})
		return
	}
	outcomes := make([]memsim.ScheduleOutcome, len(req.Outcomes))
	for i, o := range req.Outcomes {
		if o.Failure != "" {
			outcomes[i].Err = errorString(o.Failure)
		}
		outcomes[i].Children = schedulesFromWire(o.Children)
	}
	accepted, err := table.report(&req, outcomes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	kind := "report"
	if !accepted {
		kind = "stale-report"
		c.staleReports++
	}
	c.events = append(c.events, LeaseEvent{
		Kind: kind, Model: req.Model, Depth: req.Depth,
		Lo: req.Lo, Hi: req.Hi, Worker: req.Worker, LeaseID: req.LeaseID,
	})
	c.mu.Unlock()
	reason := ""
	if !accepted {
		reason = "range already completed"
	}
	writeJSON(w, ReportResponse{Accepted: accepted, Reason: reason})
}

func (c *Coordinator) noteStale(req *ReportRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.staleReports++
	c.events = append(c.events, LeaseEvent{
		Kind: "stale-report", Model: req.Model, Depth: req.Depth,
		Lo: req.Lo, Hi: req.Hi, Worker: req.Worker, LeaseID: req.LeaseID,
	})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	resp := StatusResponse{
		Algorithm:    c.cfg.Algorithm,
		State:        "running",
		Leases:       0,
		ReLeases:     c.reLeases,
		StaleReports: c.staleReports,
	}
	for _, ev := range c.events {
		if ev.Kind == "lease" || ev.Kind == "re-lease" {
			resp.Leases++
		}
	}
	if c.finished {
		resp.State = "done"
		if c.err != nil {
			resp.State = "failed"
			resp.Failure = c.err.Error()
		}
	}
	table := c.table
	c.mu.Unlock()
	if table != nil {
		resp.Model = table.model.String()
		resp.Depth = table.depth
		resp.Frontier = len(table.wave)
		resp.RangesPending, resp.RangesLeased, resp.RangesDone = table.counts()
	}
	writeJSON(w, resp)
}

// errorString is a trivial error wrapper for failures that crossed the
// wire as strings. It exists (instead of errors.New) to document that
// fleet-side errors are reconstructed text: message-identical to the
// local run's error, with the original type erased by serialization.
type errorString string

func (e errorString) Error() string { return string(e) }
