package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/obs"
	"fetchphi/internal/telemetry"
)

// Coordinator defaults.
const (
	// DefaultLeaseSize is the number of schedules per lease: small
	// enough that a late wave balances across workers, large enough
	// that HTTP round-trips stay cold relative to simulation cost
	// (the same trade-off as memsim's claimBatch, scaled up for
	// network latency).
	DefaultLeaseSize = 256
	// DefaultLeaseTimeout is how long a worker holds a range before
	// it becomes claimable again.
	DefaultLeaseTimeout = 30 * time.Second
	// DefaultRetryMS is the poll delay suggested to workers when no
	// range is available.
	DefaultRetryMS = 100
)

// CoordinatorOptions tune a coordinator; the zero value selects the
// documented defaults.
type CoordinatorOptions struct {
	// LeaseSize is the schedules-per-lease grid pitch.
	LeaseSize int
	// LeaseTimeout is the re-lease deadline.
	LeaseTimeout time.Duration
	// RetryMS is the wait-poll hint sent to workers.
	RetryMS int
	// CheckpointPath enables resumable checkpoints (see Campaign).
	CheckpointPath string
	// CapacityPath enables the fetchphi.capacity/v1 artifact, written
	// next to the checkpoint after every wave and finalized when the
	// campaign ends (see Campaign.CapacityPath).
	CapacityPath string
	// Metrics is the coordinator's telemetry registry; its clock is the
	// telemetry clock, wholly separate from Now (the lease clock). Nil
	// selects a fresh wall-clock registry.
	Metrics *telemetry.Registry
	// CreatedBy and Commit stamp the artifact header
	// (default "fleet-coordinator" / empty).
	CreatedBy string
	Commit    string
	// Now substitutes the lease clock — fault-injection tests advance
	// a fake clock to expire leases deterministically. Nil selects the
	// wall clock (the one legitimately nondeterministic input here;
	// deadlines gate only *when* a range is re-offered, never what its
	// outcomes are).
	Now func() time.Time
	// Progress, if non-nil, observes each wave start.
	Progress func(model memsim.Model, p memsim.ExploreProgress)
	// AfterWave passes through to Campaign.AfterWave: it fires after
	// each wave is checkpointed, and a non-nil error stops the
	// campaign on the wave boundary — the controlled-shutdown (and
	// SIGKILL-equivalence test) hook.
	AfterWave func(model memsim.Model, depth int) error
}

// Coordinator is the fleet's control plane: it owns the campaign wave
// loop, decomposes each wave into leases, and merges reported outcomes
// back into the canonical index order. It executes no schedules
// itself — workers (in other processes, or in-process via Check) do.
type Coordinator struct {
	cfg      Config
	opts     CoordinatorOptions
	now      func() time.Time
	metrics  *telemetry.Registry
	leaseSeq atomic.Int64

	mu           sync.Mutex
	table        *leaseTable // active wave, nil between waves
	events       []LeaseEvent
	reLeases     int
	staleReports int
	workers      map[string]*workerState
	finished     bool
	reports      []harness.ModelReport
	artifact     *obs.ExploreArtifact
	err          error

	done chan struct{}
}

// workerState is the coordinator's per-worker liveness ledger, keyed
// by worker ID and read by the status endpoint. lastSeen is per the
// lease clock — it gates nothing, so the one nondeterministic input
// stays confined to display.
type workerState struct {
	leases    int64
	schedules int64
	lastSeen  time.Time
}

// NewCoordinator prepares a coordinator for one campaign. Call Run
// (usually in a goroutine) to start the wave loop, and serve Handler
// somewhere workers can reach.
func NewCoordinator(cfg Config, opts CoordinatorOptions) *Coordinator {
	if opts.LeaseSize <= 0 {
		opts.LeaseSize = DefaultLeaseSize
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = DefaultLeaseTimeout
	}
	if opts.RetryMS <= 0 {
		opts.RetryMS = DefaultRetryMS
	}
	if opts.CreatedBy == "" {
		opts.CreatedBy = "fleet-coordinator"
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.New(nil)
	}
	return &Coordinator{
		cfg: cfg.withDefaults(), opts: opts, now: now,
		metrics: opts.Metrics,
		workers: make(map[string]*workerState),
		done:    make(chan struct{}),
	}
}

// Metrics returns the coordinator's telemetry registry.
func (c *Coordinator) Metrics() *telemetry.Registry { return c.metrics }

// Run drives the campaign to completion and records its outcome; it
// returns what Wait returns. Safe to call exactly once.
func (c *Coordinator) Run() ([]harness.ModelReport, error) {
	camp := &Campaign{
		Config:         c.cfg,
		Exec:           c,
		CheckpointPath: c.opts.CheckpointPath,
		CapacityPath:   c.opts.CapacityPath,
		Metrics:        c.metrics,
		CreatedBy:      c.opts.CreatedBy,
		Commit:         c.opts.Commit,
		Progress:       c.opts.Progress,
		AfterWave:      c.opts.AfterWave,
	}
	reports, art, err := camp.Run()
	c.mu.Lock()
	c.finished = true
	c.reports = reports
	c.artifact = art
	c.err = err
	c.mu.Unlock()
	close(c.done)
	return reports, err
}

// Wait blocks until the campaign finishes and returns its reports and
// first-failing-model error, exactly like harness.CheckSharded.
func (c *Coordinator) Wait() ([]harness.ModelReport, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports, c.err
}

// Artifact returns the final explore artifact once the campaign has
// finished (nil before that, or when the campaign aborted).
func (c *Coordinator) Artifact() *obs.ExploreArtifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.artifact
}

// LeaseLog returns a copy of the lease log: every grant, re-lease,
// accepted report, and stale report, in arrival order. The log is an
// audit trail — the checkpoint-resume tests use it to prove completed
// waves are never re-explored — not part of the deterministic result.
func (c *Coordinator) LeaseLog() []LeaseEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LeaseEvent(nil), c.events...)
}

// ExecWave implements WaveExecutor: it publishes the wave as a lease
// table, waits for workers to complete every range, and collects the
// outcomes in canonical order.
func (c *Coordinator) ExecWave(model memsim.Model, depth int, wave [][]memsim.Preemption) []memsim.ScheduleOutcome {
	t := newLeaseTable(model, depth, wave, c.opts.LeaseSize, c.opts.LeaseTimeout, c.now)
	c.mu.Lock()
	c.table = t
	c.mu.Unlock()
	<-t.done
	c.mu.Lock()
	c.table = nil
	c.mu.Unlock()
	return t.collect()
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathConfig, c.handleConfig)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathReport, c.handleReport)
	mux.HandleFunc(PathStatus, c.handleStatus)
	mux.HandleFunc(PathMetrics, c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.cfg)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("fleet: bad lease request: %v", err), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	finished, table := c.finished, c.table
	c.mu.Unlock()
	if finished {
		writeJSON(w, LeaseResponse{Status: StatusDone})
		return
	}
	if table == nil {
		writeJSON(w, LeaseResponse{Status: StatusWait, RetryMS: c.opts.RetryMS})
		return
	}
	lease, kind, ok := table.claim(req.Worker, c.leaseSeq.Add(1))
	if !ok {
		c.touchWorker(req.Worker, 0, 0)
		writeJSON(w, LeaseResponse{Status: StatusWait, RetryMS: c.opts.RetryMS})
		return
	}
	c.mu.Lock()
	if kind == "re-lease" {
		c.reLeases++
	}
	c.events = append(c.events, LeaseEvent{
		Kind: kind, Model: lease.Model, Depth: lease.Depth,
		Lo: lease.Lo, Hi: lease.Hi, Worker: req.Worker, LeaseID: lease.ID,
	})
	c.mu.Unlock()
	c.metrics.Counter(MetricLeases).Inc()
	if kind == "re-lease" {
		c.metrics.Counter(MetricReLeases).Inc()
	}
	c.metrics.Counter(WorkerMetric(req.Worker, "leases")).Inc()
	c.touchWorker(req.Worker, 1, 0)
	writeJSON(w, LeaseResponse{Status: StatusLease, Lease: lease})
}

// touchWorker records one worker contact: lastSeen moves to now (lease
// clock), and the grant/schedule deltas accumulate into the liveness
// ledger the status endpoint reports.
func (c *Coordinator) touchWorker(id string, leases, schedules int64) {
	if id == "" {
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[id]
	if !ok {
		ws = &workerState{}
		c.workers[id] = ws
	}
	ws.leases += leases
	ws.schedules += schedules
	ws.lastSeen = c.now()
	c.mu.Unlock()
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("fleet: bad report: %v", err), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	table := c.table
	c.mu.Unlock()
	if table == nil || table.model.String() != req.Model || table.depth != req.Depth {
		// The wave this report belongs to has already completed (its
		// range was re-leased and reported by someone else); nothing
		// to merge, and nothing lost — outcomes are deterministic.
		c.noteStale(&req)
		writeJSON(w, ReportResponse{Accepted: false, Reason: "no active wave at that model/depth"})
		return
	}
	outcomes := make([]memsim.ScheduleOutcome, len(req.Outcomes))
	for i, o := range req.Outcomes {
		if o.Failure != "" {
			outcomes[i].Err = errorString(o.Failure)
		}
		outcomes[i].Children = schedulesFromWire(o.Children)
	}
	accepted, err := table.report(&req, outcomes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	kind := "report"
	if !accepted {
		kind = "stale-report"
		c.staleReports++
	}
	c.events = append(c.events, LeaseEvent{
		Kind: kind, Model: req.Model, Depth: req.Depth,
		Lo: req.Lo, Hi: req.Hi, Worker: req.Worker, LeaseID: req.LeaseID,
	})
	c.mu.Unlock()
	if accepted {
		c.metrics.Counter(MetricReports).Inc()
		c.metrics.Counter(WorkerMetric(req.Worker, "schedules")).Add(int64(req.Hi - req.Lo))
		c.touchWorker(req.Worker, 0, int64(req.Hi-req.Lo))
	} else {
		c.metrics.Counter(MetricStaleReports).Inc()
		c.touchWorker(req.Worker, 0, 0)
	}
	reason := ""
	if !accepted {
		reason = "range already completed"
	}
	writeJSON(w, ReportResponse{Accepted: accepted, Reason: reason})
}

func (c *Coordinator) noteStale(req *ReportRequest) {
	c.mu.Lock()
	c.staleReports++
	c.events = append(c.events, LeaseEvent{
		Kind: "stale-report", Model: req.Model, Depth: req.Depth,
		Lo: req.Lo, Hi: req.Hi, Worker: req.Worker, LeaseID: req.LeaseID,
	})
	c.mu.Unlock()
	c.metrics.Counter(MetricStaleReports).Inc()
	c.touchWorker(req.Worker, 0, 0)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	resp := StatusResponse{
		Algorithm:    c.cfg.Algorithm,
		State:        "running",
		Leases:       0,
		ReLeases:     c.reLeases,
		StaleReports: c.staleReports,
	}
	for _, ev := range c.events {
		if ev.Kind == "lease" || ev.Kind == "re-lease" {
			resp.Leases++
		}
	}
	now := c.now()
	for id, ws := range c.workers {
		resp.Workers = append(resp.Workers, WorkerStatus{
			Worker:     id,
			Leases:     ws.leases,
			Schedules:  ws.schedules,
			LastSeenMS: now.Sub(ws.lastSeen).Milliseconds(),
		})
	}
	if c.finished {
		resp.State = "done"
		if c.err != nil {
			resp.State = "failed"
			resp.Failure = c.err.Error()
		}
	}
	table := c.table
	c.mu.Unlock()
	sort.Slice(resp.Workers, func(i, j int) bool { return resp.Workers[i].Worker < resp.Workers[j].Worker })
	resp.Waves = c.metrics.Counter(MetricWaves).Value()
	resp.Schedules = c.metrics.Counter(MetricSchedules).Value()
	if table != nil {
		resp.Model = table.model.String()
		resp.Depth = table.depth
		resp.Frontier = len(table.wave)
		resp.RangesPending, resp.RangesLeased, resp.RangesDone = table.counts()
	}
	writeJSON(w, resp)
}

// handleMetrics serves the registry as one JSON snapshot. The snapshot
// reads the telemetry clock, so a fake-clock determinism run must not
// poll this endpoint mid-campaign (the capacity artifact is the
// deterministic view; this endpoint is the live one).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.metrics.Snapshot())
}

// errorString is a trivial error wrapper for failures that crossed the
// wire as strings. It exists (instead of errors.New) to document that
// fleet-side errors are reconstructed text: message-identical to the
// local run's error, with the original type erased by serialization.
type errorString string

func (e errorString) Error() string { return string(e) }
