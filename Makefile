GO ?= go

.PHONY: ci lint vet fetchphilint build test race trace-smoke bench report baseline gate clean

# ci is the full tier-1 pipeline: static checks (vet + the repo's own
# analysis suite), build, tests, the race detector over the genuinely
# concurrent packages, and the trace-pipeline smoke test.
ci: lint build test race trace-smoke

# lint runs go vet plus cmd/fetchphilint, the custom static-analysis
# suite (awaitwatch, memsimpurity, determinism, phasebalance).
lint: vet fetchphilint

vet:
	$(GO) vet ./...

fetchphilint:
	$(GO) run ./cmd/fetchphilint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages that use real goroutines: the native spin
# locks, the parallel sweep engine in harness, and the obs artifact
# layer it records into.
race:
	$(GO) test -race ./internal/nativelock/... ./internal/harness/... ./internal/obs/...

# trace-smoke exercises the whole trace pipeline on a real workload:
# record a 4-process G-DSM run as a fetchphi.trace/v1 artifact,
# validate it against the schema, and round-trip it through the
# Perfetto (Chrome trace-event) converter.
trace-smoke:
	$(GO) run ./cmd/tracectl record -alg g-dsm -model DSM -n 4 -entries 3 -out bench/current/traces/TRACE_smoke.json
	$(GO) run ./cmd/tracectl validate -in bench/current/traces/TRACE_smoke.json
	$(GO) run ./cmd/tracectl convert -in bench/current/traces/TRACE_smoke.json -out bench/current/traces/TRACE_smoke.chrome.json

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# report runs every experiment through the parallel sweep engine and
# writes BENCH_<experiment>.json artifacts into bench/current.
report:
	$(GO) run ./cmd/report -quick -out bench/current

# baseline regenerates the checked-in gate baseline. Run it (and commit
# the result) only after a deliberate performance change.
baseline:
	$(GO) run ./cmd/report -quick -out bench/baseline

# gate re-runs the experiments and fails on any RMR regression against
# the checked-in artifacts in bench/baseline — works out of the box on
# a fresh clone.
gate:
	$(GO) run ./cmd/report -quick -out bench/current -baseline bench/baseline

clean:
	rm -rf bench/current
