GO ?= go

.PHONY: ci lint vet fetchphilint lint-gate build test race trace-smoke explore-smoke fleet-smoke telemetry-smoke stress-smoke abort-smoke claims claims-smoke bench sweep report baseline baseline-claims baseline-lint baseline-stress gate clean

# ci is the full tier-1 pipeline: static checks (vet + the repo's own
# analysis suite, gated against the checked-in lint baseline), build,
# tests, the race detector over the genuinely concurrent packages, the
# trace-pipeline smoke test, the sharded model-checker smoke, the
# distributed-fleet + telemetry smokes, the native-stress smoke, the
# abortable-pipeline smoke, and the claims-conformance gate + smoke.
ci: lint-gate build test race trace-smoke explore-smoke fleet-smoke telemetry-smoke stress-smoke abort-smoke claims claims-smoke

# lint runs go vet plus cmd/fetchphilint — the per-package analyzers
# (awaitwatch, memsimpurity, determinism, phasebalance), the
# interprocedural certifiers (localspin, rmrbound), and the
# ignoreaudit sweep — recording the fetchphi.lint/v1 artifact.
lint: vet fetchphilint

vet:
	$(GO) vet ./...

fetchphilint:
	$(GO) run ./cmd/fetchphilint -json bench/current/LINT.json ./...

# lint-gate compares the fresh lint artifact against the checked-in
# baseline: new findings, locality-verdict regressions, and lost RMR
# bounds fail; grandfathered findings do not.
lint-gate: vet
	$(GO) run ./cmd/fetchphilint -json bench/current/LINT.json -baseline bench/baseline/LINT.json ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages that use real goroutines: the native spin
# locks (including the starvation smokes), the stress harness that
# drives them, the sharded explorer in memsim, the parallel sweep
# engine and sharded checker in harness (abortable sweeps included),
# the obs artifact layer they record into, the coordinator/worker
# fleet, the telemetry registry every fleet component observes into
# concurrently, and the claims evaluator. The experiments package is
# restricted to its parallel-sweep tests: the exhaustive conformance
# runs there are single-worker model checks where the race detector
# adds minutes and finds nothing.
race:
	$(GO) test -race ./internal/nativelock/... ./internal/stress/... ./internal/memsim/... ./internal/harness/... ./internal/obs/... ./internal/fleet/... ./internal/telemetry/... ./internal/claims/...
	$(GO) test -race -run 'TestE10|TestSweep' ./internal/experiments/...

# trace-smoke exercises the whole trace pipeline on a real workload:
# record a 4-process G-DSM run as a fetchphi.trace/v1 artifact,
# validate it against the schema, and round-trip it through the
# Perfetto (Chrome trace-event) converter.
trace-smoke:
	$(GO) run ./cmd/tracectl record -alg g-dsm -model DSM -n 4 -entries 3 -out bench/current/traces/TRACE_smoke.json
	$(GO) run ./cmd/tracectl validate -in bench/current/traces/TRACE_smoke.json
	$(GO) run ./cmd/tracectl convert -in bench/current/traces/TRACE_smoke.json -out bench/current/traces/TRACE_smoke.chrome.json

# explore-smoke gates CI on the sharded model checker: exhaustive
# preemption-bounded checks (K=2) of the paper's DSM algorithm and one
# arbitration-tree construction, sharded across ≥4 workers, with the
# coverage recorded as fetchphi.explore/v1 artifacts. -require-exhausted
# turns a capped (and therefore inconclusive) exploration into a CI
# failure.
explore-smoke:
	$(GO) run ./cmd/explore -alg g-dsm -n 2 -entries 2 -preemptions 2 -workers 4 -require-exhausted -out bench/current/explore/EXPLORE_g-dsm.json
	$(GO) run ./cmd/explore -alg tree4 -n 2 -entries 2 -preemptions 2 -workers 4 -require-exhausted -out bench/current/explore/EXPLORE_tree4.json

# fleet-smoke stands up a real (in-process) model-checking fleet — a
# coordinator plus two workers over loopback HTTP — and exhausts the
# paper's DSM algorithm at N=2, K=2, recording the wall-clock-free
# campaign artifact. The verdict must match explore-smoke's g-dsm run
# bit for bit; the in-repo equivalence tests enforce that invariant.
fleet-smoke:
	$(GO) run ./cmd/fleet run -alg g-dsm -n 2 -entries 2 -preemptions 2 -workers 2 -out bench/current/explore/EXPLORE_fleet_g-dsm.json

# telemetry-smoke gates CI on the observability layer: a loopback fleet
# run must leave behind a valid, Complete fetchphi.capacity/v1 artifact
# with nonzero schedule/lease/throughput numbers, and /v1/metrics must
# answer 200 with counters that agree with the artifact.
telemetry-smoke:
	$(GO) run ./cmd/fleet smoke -alg g-dsm -n 2 -entries 2 -preemptions 2 -workers 2 -capacity bench/current/explore/CAPACITY_g-dsm.json

# stress-smoke gates CI on the native-load observability path: a small
# closed-loop sweep over four locks must leave behind a schema-valid
# fetchphi.stress/v1 artifact with non-empty latency and fairness
# numbers, and the artifact must clear the regression gate replayed
# against itself (-in skips re-running; the gate logic still executes).
# Numbers are wall-clock, so CI does not gate them against the
# checked-in baseline — that comparison is for like-host runs via
# `lockstress -baseline bench/baseline/STRESS.json`.
stress-smoke:
	$(GO) run ./cmd/lockstress -lock mutex,ticket,clh,mcs -workers 4 -iters 5000 -window 2000 -out bench/current/STRESS_smoke.json
	$(GO) run ./cmd/lockstress -in bench/current/STRESS_smoke.json -baseline bench/current/STRESS_smoke.json

# abort-smoke gates CI on the abortable pipeline end to end: a quick
# live E10 sweep (pinned abort schedules, every abortable algorithm,
# both memory models) must produce abort-accounted cells, and the
# claims engine must reproduce the O(1)-amortized verdict from the
# fresh artifact — cmd/claims exits nonzero on any NOT-reproduced
# verdict, so this is a live reproduction, not a replay; the E1–E9
# claims are merely inconclusive here and do not gate.
abort-smoke:
	$(GO) run ./cmd/report -experiments E10 -quick -out bench/current/abort-smoke
	$(GO) run ./cmd/claims -bench bench/current/abort-smoke -out bench/current/abort-smoke/CLAIMS.json

# claims evaluates the paper-claims registry over the checked-in
# bench/baseline artifacts (so it works on a fresh clone, with no
# sweep) and gates against the checked-in verdicts: CI fails, naming
# the claim, if any verdict flips from reproduced.
claims:
	$(GO) run ./cmd/claims -bench bench/baseline -out bench/current/CLAIMS.json -html bench/current/claims.html -baseline bench/baseline/CLAIMS.json

# claims-smoke runs the full sweep → claims pipeline end to end on a
# small live sweep (E1+E2; cmd/report evaluates claims over the output
# automatically), then exercises the markdown table generator.
claims-smoke:
	$(GO) run ./cmd/report -experiments E1,E2 -quick -out bench/current/claims-smoke
	$(GO) run ./cmd/claims -bench bench/current/claims-smoke -markdown > /dev/null

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# sweep (alias: report) runs every experiment through the parallel
# sweep engine and writes BENCH_<experiment>.json artifacts — plus the
# claims artifact and HTML report — into bench/current.
sweep: report

report:
	$(GO) run ./cmd/report -quick -out bench/current

# baseline regenerates the checked-in gate baselines (bench artifacts
# and claims verdicts). Run it (and commit the result) only after a
# deliberate performance or conclusion change.
baseline:
	$(GO) run ./cmd/report -quick -out bench/baseline -claims=false
	$(MAKE) baseline-claims

# baseline-claims regenerates only bench/baseline/CLAIMS.json from the
# checked-in bench artifacts.
baseline-claims:
	$(GO) run ./cmd/claims -bench bench/baseline -out bench/baseline/CLAIMS.json

# baseline-lint regenerates the checked-in lint baseline. Run it (and
# commit the result) only after deliberately accepting a new finding
# or verdict change.
baseline-lint:
	$(GO) run ./cmd/fetchphilint -json bench/baseline/LINT.json ./...

# baseline-stress regenerates the checked-in native-stress baseline.
# The numbers are wall-clock and host-specific: regenerate (and
# commit) on the reference machine after a deliberate lock change, and
# compare against it only on like hosts.
baseline-stress:
	$(GO) run ./cmd/lockstress -workers 4 -iters 20000 -slim -out bench/baseline/STRESS.json

# gate re-runs the experiments and fails on any RMR regression against
# the checked-in artifacts in bench/baseline — works out of the box on
# a fresh clone.
gate:
	$(GO) run ./cmd/report -quick -out bench/current -baseline bench/baseline

# clean empties bench/current but keeps the directory (and its
# self-ignoring .gitignore) in place.
clean:
	rm -rf bench/current/*
