GO ?= go

.PHONY: ci vet build test race bench report gate clean

# ci is the full tier-1 pipeline: static checks, build, tests, and the
# race detector over the native (real-goroutine) locks.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/nativelock/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# report runs every experiment through the parallel sweep engine and
# writes BENCH_<experiment>.json artifacts into bench/.
report:
	$(GO) run ./cmd/report -quick -out bench

# gate re-runs the experiments and fails on any RMR regression against
# the artifacts in bench/ (produce them first with `make report`).
gate:
	$(GO) run ./cmd/report -quick -out bench/current -baseline bench

clean:
	rm -rf bench/current
