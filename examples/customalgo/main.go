// customalgo: bring your own algorithm. This example implements
// Dekker's classic two-process mutual exclusion algorithm against the
// library's simulated-machine API, then puts it through the same
// verification and measurement pipeline the built-in algorithms use:
//
//  1. randomized stress with full safety checking,
//
//  2. exhaustive preemption-bounded model checking,
//
//  3. RMR accounting on CC and DSM,
//
//  4. spin-locality analysis (Dekker spins on shared variables, so it
//     is NOT a local-spin algorithm on DSM — compare the two-process
//     component in internal/twoproc, which is).
//
//     go run ./examples/customalgo
package main

import (
	"fmt"
	"log"

	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
)

// dekker is Dekker's algorithm: two intent flags and a turn variable;
// the process whose turn it is insists, the other backs off.
type dekker struct {
	flag [2]memsim.Var
	turn memsim.Var
}

func newDekker(m *memsim.Machine) harness.Algorithm {
	return &dekker{
		flag: [2]memsim.Var{
			m.NewVar("dekker.flag[0]", 0, 0),
			m.NewVar("dekker.flag[1]", 1, 0),
		},
		turn: m.NewVar("dekker.turn", memsim.HomeGlobal, 0),
	}
}

func (d *dekker) Name() string { return "dekker" }

// Acquire implements the entry protocol for process p (id 0 or 1).
func (d *dekker) Acquire(p *memsim.Proc) {
	me := p.ID()
	other := 1 - me
	p.Write(d.flag[me], 1)
	for p.Read(d.flag[other]) != 0 {
		if p.Read(d.turn) != memsim.Word(me) {
			// Not my turn: back off and wait for it.
			p.Write(d.flag[me], 0)
			p.AwaitEq(d.turn, memsim.Word(me))
			p.Write(d.flag[me], 1)
		} else {
			// My turn: the rival will back off; wait it out.
			p.Await(func(read func(memsim.Var) memsim.Word) bool {
				return read(d.flag[other]) == 0
			}, d.flag[other])
		}
	}
}

// Release implements the exit protocol.
func (d *dekker) Release(p *memsim.Proc) {
	me := p.ID()
	p.Write(d.turn, memsim.Word(1-me))
	p.Write(d.flag[me], 0)
}

func main() {
	builder := harness.Builder(newDekker)

	fmt.Println("1. randomized stress (mutual exclusion, deadlock, completion):")
	if err := harness.Verify(builder, 2, 10, 50); err != nil {
		log.Fatalf("   FAILED: %v", err)
	}
	fmt.Println("   ok: 50 seeds × 2 models")

	fmt.Println("\n2. exhaustive model checking (≤3 preemptions):")
	if err := harness.Check(builder, 2, 2, 3, 2_000_000); err != nil {
		log.Fatalf("   FAILED: %v", err)
	}
	fmt.Println("   ok: every explored schedule is safe and live")

	fmt.Println("\n3. RMR cost per critical-section entry:")
	for _, model := range []memsim.Model{memsim.CC, memsim.DSM} {
		met, err := harness.Run(builder, harness.Workload{
			Model: model, N: 2, Entries: 20, CSOps: 1, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-9v mean %.1f, worst %d, non-local spin reads %d\n",
			model, met.MeanRMR, met.WorstRMR, met.NonLocalSpins)
	}

	fmt.Println("\n4. verdict: correct, but NOT local-spin on DSM — its waits read")
	fmt.Println("   the rival's flag and the shared turn. The repository's")
	fmt.Println("   internal/twoproc plays the same role with zero non-local spins.")
}
