// rmrscaling: the paper's headline comparison in one run — how the
// worst-case RMRs per lock acquisition scale with the number of
// processes for each algorithm family:
//
//	G-DSM (rank 2N primitive)      → O(1)           (Lemma 2)
//	arbitration tree (rank 4)      → Θ(log₂ N)      (Theorem 1)
//	Algorithm T (rank 3, self-res) → Θ(log N/loglog N) (Theorem 2)
//	ticket lock (baseline)         → grows with N on CC
//
//	go run ./examples/rmrscaling
package main

import (
	"fmt"
	"log"

	"fetchphi/internal/baseline"
	"fetchphi/internal/core"
	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/phi"
)

func worst(b harness.Builder, model memsim.Model, n int) int64 {
	met, err := harness.Run(b, harness.Workload{
		Model: model, N: n, Entries: 6, CSOps: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return met.WorstRMR
}

func main() {
	algs := []struct {
		name  string
		model memsim.Model
		build harness.Builder
	}{
		{"g-dsm (O(1), DSM)", memsim.DSM, func(m *memsim.Machine) harness.Algorithm {
			return core.NewGDSM(m, phi.FetchAndIncrement{})
		}},
		{"tree r=4 (log2 N, DSM)", memsim.DSM, func(m *memsim.Machine) harness.Algorithm {
			return core.NewTree(m, phi.NewBoundedFetchInc(4))
		}},
		{"algorithm T (logN/loglogN, CC)", memsim.CC, func(m *memsim.Machine) harness.Algorithm {
			return core.NewT(m, phi.BoundedIncDec{})
		}},
		{"ticket (baseline, CC)", memsim.CC, func(m *memsim.Machine) harness.Algorithm {
			return baseline.NewTicketLock(m)
		}},
	}

	ns := []int{2, 4, 8, 16, 32, 64}
	fmt.Printf("worst-case RMRs per critical-section entry\n\n")
	fmt.Printf("%-32s", "algorithm \\ N")
	for _, n := range ns {
		fmt.Printf("%6d", n)
	}
	fmt.Println()
	for _, a := range algs {
		fmt.Printf("%-32s", a.name)
		for _, n := range ns {
			fmt.Printf("%6d", worst(a.build, a.model, n))
		}
		fmt.Println()
	}
	fmt.Println("\nshape check: the g-dsm row is flat; tree grows ~log2 N;")
	fmt.Println("algorithm T grows slower than the tree; ticket grows ~linearly.")
}
