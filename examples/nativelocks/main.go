// nativelocks: use the library's real sync/atomic spin locks — the MCS
// queue lock and the paper's generic two-queue algorithm — to protect
// a shared structure under genuine goroutine contention.
//
//	go run ./examples/nativelocks
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fetchphi/internal/nativelock"
)

// ledger is a tiny shared structure with an invariant (total stays 0)
// that breaks immediately if the protecting lock fails.
type ledger struct {
	accounts [8]int64
}

func (l *ledger) transfer(from, to int, amount int64) {
	l.accounts[from] -= amount
	l.accounts[to] += amount
}

func (l *ledger) total() int64 {
	var sum int64
	for _, a := range l.accounts {
		sum += a
	}
	return sum
}

func run(name string, workers, iters int, cs func(id int, body func())) {
	var led ledger
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cs(w, func() { led.transfer(w%8, (w+i)%8, 1) })
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	status := "invariant holds"
	if led.total() != 0 {
		status = fmt.Sprintf("INVARIANT BROKEN: total=%d", led.total())
	}
	fmt.Printf("%-22s %8.1f ns/op   %s\n",
		name, float64(elapsed.Nanoseconds())/float64(workers*iters), status)
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	const iters = 100_000
	fmt.Printf("%d goroutines × %d transfers each\n\n", workers, iters)

	mcs := nativelock.NewMCSLock()
	run("mcs", workers, iters, func(_ int, body func()) {
		n := mcs.Lock()
		body()
		mcs.Unlock(n)
	})

	gen := nativelock.NewGeneric(workers, nativelock.FetchIncrement)
	run("generic/fetch-inc", workers, iters, func(id int, body func()) {
		gen.LockID(id)
		body()
		gen.UnlockID(id)
	})

	genSwap := nativelock.NewGeneric(workers, nativelock.FetchStore)
	run("generic/fetch-store", workers, iters, func(id int, body func()) {
		genSwap.LockID(id)
		body()
		genSwap.UnlockID(id)
	})

	var mu sync.Mutex
	run("sync.Mutex (stdlib)", workers, iters, func(_ int, body func()) {
		mu.Lock()
		body()
		mu.Unlock()
	})
}
