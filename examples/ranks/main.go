// ranks: a tour of the paper's central concept — the RANK of a
// fetch-and-φ primitive (Sec. 2) — shown concretely:
//
//  1. an r-bounded fetch-and-increment orders exactly r invocations,
//     then loses information;
//
//  2. the rank checker refutes rank r+1 with a concrete interleaving;
//
//  3. Algorithm G-CC's two-queue reset keeps a rank-2N primitive
//     inside its budget forever;
//
//  4. a self-resettable primitive undoes its own invocation (the key
//     to Algorithm T).
//
//     go run ./examples/ranks
package main

import (
	"fmt"
	"log"

	"fetchphi/internal/core"
	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/phi"
)

func main() {
	// 1. Watch a 4-bounded fetch-and-increment hand out positions —
	// and saturate.
	prim := phi.NewBoundedFetchInc(4)
	fmt.Println("1. invoking 4-bounded fetch-and-increment on a fresh variable:")
	v := phi.Bottom
	for i := 1; i <= 6; i++ {
		old := v
		v = prim.Apply(v, phi.Bottom)
		marker := ""
		if i > 4 {
			marker = "   ← indistinguishable from invocation 4: rank exhausted"
		}
		fmt.Printf("   invocation %d: returns %d, variable now %d%s\n", i, old, v, marker)
	}

	// 2. The checker refutes rank 5 with a concrete interleaving.
	fmt.Println("\n2. the empirical rank checker agrees:")
	if v := phi.CheckRank(prim, 4, 5, 2000, 1); v != nil {
		fmt.Printf("   %v\n", v)
	} else {
		fmt.Println("   unexpectedly consistent with rank 5")
	}
	fmt.Printf("   estimated rank: %d (claimed %d)\n",
		phi.EstimateRank(prim, 4, 10, 2000, 1), prim.Rank())

	// 3. G-CC with a rank-2N primitive survives unbounded lock
	// traffic because the queue-switch resets each tail before its
	// 2N-invocation budget runs out.
	const n = 3
	fmt.Printf("\n3. G-CC with the %d-bounded primitive (rank exactly 2N) under %d acquisitions:\n", 2*n, n*50)
	met, err := harness.Run(func(m *memsim.Machine) harness.Algorithm {
		return core.NewGCC(m, phi.NewBoundedFetchInc(2*n))
	}, harness.Workload{Model: memsim.CC, N: n, Entries: 50, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d critical sections completed, worst %d RMRs per entry — the reset mechanism works\n",
		met.Result.CSEntries, met.WorstRMR)

	// 4. Self-resettability: the rank-3 primitive Algorithm T builds
	// on.
	fmt.Println("\n4. self-resettable bounded inc/dec on 0..2 (rank 3):")
	sr := phi.BoundedIncDec{}
	alpha, beta := sr.Inputs(0)[0], sr.Resets(0)[0]
	after := sr.Apply(phi.Bottom, alpha)
	reset := sr.Apply(after, beta)
	fmt.Printf("   φ(⊥, α)=%d, then φ(%d, β)=%d — the primitive undoes itself: φ(φ(⊥,α),β)=⊥\n",
		after, after, reset)
	if err := phi.CheckSelfReset(sr, 4, 300, 100, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   self-reset identity and ⊥-uniqueness verified over random interleavings")
}
