// faultfinding: use the repository's verification substrate — the
// CHESS-style preemption-bounded explorer, PCT schedulers, and the
// execution trace recorder — to hunt a real concurrency bug: Algorithm
// G-CC exactly as printed in the paper's Fig. 2, without the
// stale-signal completion (DESIGN.md, deviation 1).
//
//	go run ./examples/faultfinding
package main

import (
	"fmt"

	"fetchphi/internal/core"
	"fetchphi/internal/memsim"
	"fetchphi/internal/phi"
)

// build constructs the buggy machine: three processes cycling through
// the critical section enough times to recycle the queues repeatedly.
func build() *memsim.Machine {
	m := memsim.NewMachine(memsim.CC, 3)
	alg := core.NewGCCWithoutStaleClear(m, phi.FetchAndIncrement{})
	for i := 0; i < 3; i++ {
		m.AddProc(fmt.Sprintf("p%d", i), func(p *memsim.Proc) {
			for e := 0; e < 40; e++ {
				alg.Acquire(p)
				p.EnterCS()
				p.ExitCS()
				alg.Release(p)
			}
		})
	}
	return m
}

func main() {
	fmt.Println("hunting the stale-signal bug in G-CC-as-printed...")

	// Strategy 1: uniform random schedules.
	fmt.Println("\n1. random schedules:")
	for seed := int64(0); seed < 50; seed++ {
		m := build()
		res := m.Run(memsim.RunConfig{Sched: memsim.NewRandom(seed), MaxSteps: 2_000_000})
		if err := res.Err(); err != nil {
			fmt.Printf("   seed %2d: FOUND after %d steps\n   %v\n", seed, res.Steps, err)
			break
		}
	}

	// Strategy 2: PCT — directed at a fixed bug depth.
	fmt.Println("\n2. probabilistic concurrency testing (depth 3):")
	for seed := int64(0); seed < 300; seed++ {
		m := build()
		res := m.Run(memsim.RunConfig{Sched: memsim.NewPCT(seed, 3, 4000), MaxSteps: 2_000_000})
		if err := res.Err(); err != nil {
			fmt.Printf("   seed %2d: FOUND after %d steps\n", seed, res.Steps)
			break
		}
	}

	// Strategy 3: replay the failure with the trace recorder to see
	// the final operations before the violation.
	fmt.Println("\n3. trace of the failing run (last 12 operations):")
	var failSeed int64 = -1
	for seed := int64(0); seed < 50; seed++ {
		if build().Run(memsim.RunConfig{Sched: memsim.NewRandom(seed), MaxSteps: 2_000_000}).Err() != nil {
			failSeed = seed
			break
		}
	}
	if failSeed < 0 {
		fmt.Println("   (no failing seed in range)")
		return
	}
	m := build()
	m.EnableTrace(12)
	res := m.Run(memsim.RunConfig{Sched: memsim.NewRandom(failSeed), MaxSteps: 2_000_000})
	fmt.Print(m.FormatTrace())
	fmt.Printf("\nverdict: %v\n", res.Err())
	fmt.Println("\nwith the stale-signal completion (core.NewGCC), the same workloads")
	fmt.Println("pass every schedule — see TestGCCStaleSignalAblation and DESIGN.md.")
}
