// Quickstart: run the paper's Algorithm G-DSM on a simulated
// distributed-shared-memory machine and watch the O(1) RMR claim hold.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fetchphi/internal/core"
	"fetchphi/internal/harness"
	"fetchphi/internal/memsim"
	"fetchphi/internal/phi"
)

func main() {
	const (
		nproc   = 8
		entries = 10
	)

	// The algorithm is generic over the fetch-and-φ primitive; any
	// primitive of rank ≥ 2N works. fetch-and-store has infinite
	// rank.
	builder := func(m *memsim.Machine) harness.Algorithm {
		return core.NewGDSM(m, phi.FetchAndStore{})
	}

	met, err := harness.Run(builder, harness.Workload{
		Model:   memsim.DSM,
		N:       nproc,
		Entries: entries,
		CSOps:   2, // simulated work inside each critical section
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err) // any mutual-exclusion or liveness failure lands here
	}

	fmt.Printf("algorithm      : g-dsm/fetch-and-store\n")
	fmt.Printf("machine        : DSM, %d processes, %d entries each\n", nproc, entries)
	fmt.Printf("CS entries     : %d (all completed, exclusion checked)\n", met.Result.CSEntries)
	fmt.Printf("mean RMR/entry : %.1f\n", met.MeanRMR)
	fmt.Printf("worst RMR/entry: %d\n", met.WorstRMR)
	fmt.Printf("non-local spins: %d (local-spin property: must be 0)\n", met.NonLocalSpins)
	fmt.Printf("max bypass     : %d (starvation freedom: bounded)\n", met.MaxBypass)
}
